package core

import (
	"bgla/internal/ident"
	"bgla/internal/lattice"
)

// SVS is the Safe-values Set of one process (WTS Alg 1): the values
// delivered by the disclosure-phase reliable broadcast. It tracks
//
//   - the single value attributed to each discloser (Observation 1:
//     reliable broadcast yields at most one value per process), and
//   - the union of all disclosed items, against which the SAFE()
//     predicate tests message elements.
type SVS struct {
	byDiscloser map[ident.ProcessID]lattice.Set
	union       lattice.Set
}

// NewSVS returns an empty tracker.
func NewSVS() *SVS {
	return &SVS{byDiscloser: make(map[ident.ProcessID]lattice.Set)}
}

// Add records the value disclosed by discloser; it reports false (and
// changes nothing) if the discloser already disclosed, which the
// reliable broadcast prevents for a single tag but a defensive layer
// still enforces.
func (s *SVS) Add(discloser ident.ProcessID, v lattice.Set) bool {
	if _, dup := s.byDiscloser[discloser]; dup {
		return false
	}
	s.byDiscloser[discloser] = v
	s.union = s.union.Union(v)
	return true
}

// Count returns the number of disclosers seen (the init_counter of
// Alg 1 line 14).
func (s *SVS) Count() int { return len(s.byDiscloser) }

// Union returns the union of all disclosed values.
func (s *SVS) Union() lattice.Set { return s.union }

// Safe implements the SAFE() predicate: the element is a subset of the
// disclosed item universe (Alg 1 lines 35-39).
func (s *SVS) Safe(element lattice.Set) bool { return element.SubsetOf(s.union) }

// Value returns the value disclosed by p, if any.
func (s *SVS) Value(p ident.ProcessID) (lattice.Set, bool) {
	v, ok := s.byDiscloser[p]
	return v, ok
}

// RoundSVS is the per-round Safe-values Set array of GWTS (Alg 3 line 2).
// The safe universe of round r is cumulative — the union of everything
// disclosed in rounds 0..r — because Proposed_set accumulates across
// rounds (Alg 3 line 18), so round-r proposals legitimately contain
// earlier values (DESIGN.md §2 note 2).
type RoundSVS struct {
	rounds []*SVS        // per-round disclosures
	cum    []lattice.Set // cum[r] = union of rounds 0..r
}

// NewRoundSVS returns an empty tracker.
func NewRoundSVS() *RoundSVS { return &RoundSVS{} }

func (rs *RoundSVS) grow(round int) {
	for len(rs.rounds) <= round {
		rs.rounds = append(rs.rounds, NewSVS())
		prev := lattice.Empty()
		if n := len(rs.cum); n > 0 {
			prev = rs.cum[n-1]
		}
		rs.cum = append(rs.cum, prev)
	}
}

// Add records discloser's round-r value; false on duplicate (same
// discloser, same round) or on a round frozen by Trim.
func (rs *RoundSVS) Add(round int, discloser ident.ProcessID, v lattice.Set) bool {
	if round < 0 {
		return false
	}
	rs.grow(round)
	if rs.rounds[round] == nil || !rs.rounds[round].Add(discloser, v) {
		return false
	}
	for r := round; r < len(rs.cum); r++ {
		rs.cum[r] = rs.cum[r].Union(v)
	}
	return true
}

// Count returns the number of disclosers in round r (Counter[r]).
func (rs *RoundSVS) Count(round int) int {
	if round < 0 || round >= len(rs.rounds) || rs.rounds[round] == nil {
		return 0
	}
	return rs.rounds[round].Count()
}

// Seed injects a checkpoint-certified value into every cumulative safe
// universe (internal/compact): the certificate proves the value is
// quorum-committed, i.e. accepted by ≥ f+1 correct acceptors whose
// SAFEA guards had already covered it, so treating it as disclosed is
// exactly the Lemma 12 filtering transferred by proof instead of by
// replayed disclosures. A lagging replica that missed the original
// disclosure broadcasts becomes able to process messages over the
// certified prefix.
func (rs *RoundSVS) Seed(round int, v lattice.Set) {
	if round < 0 {
		round = 0
	}
	rs.grow(round)
	// Trimmed prefixes alias one shared universe (Compact), so dedupe
	// by digest: the union is computed once per distinct value, keeping
	// Seed proportional to the active rounds, not the round count.
	var lastIn, lastOut lattice.Set
	first := true
	for r := range rs.cum {
		if !first && rs.cum[r].Digest() == lastIn.Digest() {
			rs.cum[r] = lastOut
			continue
		}
		lastIn = rs.cum[r]
		rs.cum[r] = rs.cum[r].Union(v)
		lastOut = rs.cum[r]
		first = false
	}
}

// Compact re-anchors the cumulative universes on a certified base
// (pure representation change — digests are preserved) and freezes
// rounds before the cutoff: their disclosure maps are dropped and
// their universes alias the cutoff's, which is sound for the
// uniformly-used SAFEA predicate because safety is monotone in the
// universe (DESIGN.md §2 note 1).
func (rs *RoundSVS) Compact(before int, base *lattice.Base) {
	cut := before
	if cut > len(rs.cum) {
		cut = len(rs.cum)
	}
	for r := 0; r < cut; r++ {
		rs.rounds[r] = nil
		if r < cut-1 {
			rs.cum[r] = rs.cum[cut-1]
		}
	}
	if base == nil {
		return
	}
	// Digest-deduped like Seed: aliased prefixes rebase once.
	var lastIn, lastOut lattice.Set
	first := true
	for r := range rs.cum {
		if !first && rs.cum[r].Digest() == lastIn.Digest() {
			rs.cum[r] = lastOut
			continue
		}
		lastIn = rs.cum[r]
		if nb, ok := rs.cum[r].Rebase(base); ok {
			rs.cum[r] = nb
		}
		lastOut = rs.cum[r]
		first = false
	}
}

// RebaseTail re-anchors only the most recent cumulative universes on
// base (pure representation change). The hot-path predicate SAFEA only
// consults the last entry, so re-anchoring the whole history at every
// local anchor advance is wasted work — older entries keep their old
// representation and straggler SafeAt lookups over them fall back to
// the mixed-representation paths, which stay correct.
func (rs *RoundSVS) RebaseTail(base *lattice.Base, tail int) {
	start := len(rs.cum) - tail
	if start < 0 {
		start = 0
	}
	var lastIn, lastOut lattice.Set
	first := true
	for r := start; r < len(rs.cum); r++ {
		if !first && rs.cum[r].Digest() == lastIn.Digest() {
			rs.cum[r] = lastOut
			continue
		}
		lastIn = rs.cum[r]
		if nb, ok := rs.cum[r].Rebase(base); ok {
			rs.cum[r] = nb
		}
		lastOut = rs.cum[r]
		first = false
	}
}

// SafeAt implements SAFE() at round r: element ⊆ ⋃_{r'≤r} SvS[r'].
func (rs *RoundSVS) SafeAt(round int, element lattice.Set) bool {
	if element.IsEmpty() {
		return true
	}
	if round < 0 {
		return false
	}
	if round >= len(rs.cum) {
		round = len(rs.cum) - 1
	}
	if round < 0 {
		return false
	}
	return element.SubsetOf(rs.cum[round])
}

// SafeAny implements the acceptor's SAFEA(): ∃r with element ⊆ SvS-cum[r],
// equivalent to safety at the highest populated round.
func (rs *RoundSVS) SafeAny(element lattice.Set) bool {
	return rs.SafeAt(len(rs.cum)-1, element)
}

// UnionAt returns the cumulative safe universe of round r.
func (rs *RoundSVS) UnionAt(round int) lattice.Set {
	if round < 0 || len(rs.cum) == 0 {
		return lattice.Empty()
	}
	if round >= len(rs.cum) {
		round = len(rs.cum) - 1
	}
	return rs.cum[round]
}

// MaxRound returns the highest round with any disclosure, or -1.
func (rs *RoundSVS) MaxRound() int { return len(rs.rounds) - 1 }
