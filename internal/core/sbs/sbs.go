package sbs

import (
	"fmt"

	"bgla/internal/core"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/sig"
)

// State is the proposer state of Alg 8.
type State int

// Proposer states.
const (
	Init State = iota
	Safetying
	Proposing
	Decided
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Init:
		return "init"
	case Safetying:
		return "safetying"
	case Proposing:
		return "proposing"
	case Decided:
		return "decided"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config configures one SbS process.
type Config struct {
	Self ident.ProcessID
	N    int
	F    int
	// Proposal is the initial value pro_i.
	Proposal lattice.Set
	// Keychain is the shared PKI.
	Keychain sig.Keychain
}

// Machine is one SbS process (proposer + acceptor), implementing the
// one-shot Safety-by-Signature algorithm (Algs 8-10).
type Machine struct {
	proto.Recorder
	cfg    Config
	quorum int
	crypto *Crypto

	// Proposer state (Alg 8).
	state    State
	safety   *SafetySet
	safeAcks map[ident.ProcessID]msg.SafeAck
	proposed PVSet
	ackers   *ident.Set
	ts       uint32
	byz      map[ident.ProcessID]bool // byz[] detection array of Alg 8
	decision lattice.Set

	// Acceptor state (Alg 9).
	candidates *Candidates
	accepted   PVSet
}

// New builds an SbS machine; the configuration must satisfy n >= 3f+1
// and provide a keychain.
func New(cfg Config) (*Machine, error) {
	if err := core.ValidateConfig(cfg.N, cfg.F); err != nil {
		return nil, err
	}
	if cfg.Keychain == nil {
		return nil, fmt.Errorf("sbs: keychain required")
	}
	return NewUnchecked(cfg), nil
}

// NewUnchecked builds a machine without the resilience-bound check.
func NewUnchecked(cfg Config) *Machine {
	quorum := core.AckQuorum(cfg.N, cfg.F)
	return &Machine{
		cfg:        cfg,
		quorum:     quorum,
		crypto:     NewCrypto(cfg.Keychain, cfg.Self, quorum),
		state:      Init,
		safety:     NewSafetySet(),
		safeAcks:   make(map[ident.ProcessID]msg.SafeAck),
		ackers:     ident.NewSet(),
		byz:        make(map[ident.ProcessID]bool),
		candidates: NewCandidates(),
	}
}

// ID implements proto.Machine.
func (m *Machine) ID() ident.ProcessID { return m.cfg.Self }

// State returns the proposer state.
func (m *Machine) State() State { return m.state }

// Decision returns the decision, if decided.
func (m *Machine) Decision() (lattice.Set, bool) { return m.decision, m.state == Decided }

// Proposed returns the current proposal as a plain lattice element.
func (m *Machine) Proposed() lattice.Set { return m.proposed.Plain() }

// DetectedByz returns the processes flagged by the byz[] array.
func (m *Machine) DetectedByz() []ident.ProcessID {
	s := ident.NewSet()
	for p, bad := range m.byz {
		if bad {
			s.Add(p)
		}
	}
	return s.Members()
}

// Start runs the Init Phase broadcast (Alg 8 lines 8-11).
func (m *Machine) Start() []proto.Output {
	sv := m.crypto.SignValue(0, m.cfg.Proposal)
	m.safety.Add(sv)
	return []proto.Output{proto.Bcast(msg.InitVal{SV: sv})}
}

// Handle implements proto.Machine.
func (m *Machine) Handle(from ident.ProcessID, in msg.Msg) []proto.Output {
	switch v := in.(type) {
	case msg.InitVal:
		return m.onInit(v)
	case msg.SafeReq:
		return m.onSafeReq(from, v)
	case msg.SafeAck:
		return m.onSafeAck(from, v)
	case msg.AckReqS:
		return m.onAckReq(from, v)
	case msg.AckS:
		return m.onAck(from, v)
	case msg.NackS:
		return m.onNack(from, v)
	case msg.Wakeup:
		return nil
	default:
		m.Emit(proto.RejectEvent{Proc: m.cfg.Self, From: from, Kind: in.Kind(), Reason: "unexpected kind"})
		return nil
	}
}

// onInit implements Alg 8 lines 12-14 and the phase transition of
// lines 16-18.
func (m *Machine) onInit(iv msg.InitVal) []proto.Output {
	if m.state != Init {
		return nil
	}
	if iv.SV.Round != 0 || !m.crypto.VerifyValue(iv.SV) {
		return nil
	}
	m.safety.Add(iv.SV)
	if m.safety.LenRound(0) >= m.cfg.N-m.cfg.F {
		m.state = Safetying
		return []proto.Output{proto.Bcast(msg.SafeReq{Round: 0, Values: m.safety.ValuesRound(0)})}
	}
	return nil
}

// onSafeReq implements the acceptor's safetying reply (Alg 9 lines 3-6).
func (m *Machine) onSafeReq(from ident.ProcessID, req msg.SafeReq) []proto.Output {
	if req.Round != 0 {
		return nil
	}
	for _, sv := range req.Values {
		if sv.Round != 0 || !m.crypto.VerifyValue(sv) {
			return nil // request contains forged values: ignore entirely
		}
	}
	conflicts := m.candidates.ConflictsWith(req.Values)
	ack := m.crypto.SignSafeAck(0, Keys(req.Values), conflicts)
	m.candidates.Observe(req.Values)
	return []proto.Output{proto.Send(from, ack)}
}

// onSafeAck implements Alg 8 lines 19-23 and the proposing transition
// of lines 25-31.
func (m *Machine) onSafeAck(from ident.ProcessID, sa msg.SafeAck) []proto.Output {
	if m.state != Safetying || m.byz[from] {
		return nil
	}
	if sa.Signer != from || sa.Round != 0 ||
		!sameKeys(sa.RcvdKeys, Keys(m.safety.ValuesRound(0))) ||
		!m.crypto.VerifySafeAck(sa) {
		m.byz[from] = true
		return nil
	}
	m.safeAcks[from] = sa
	if len(m.safeAcks) < m.quorum {
		return nil
	}
	// Collect the proof: all gathered safe_acks, attached to every value
	// that no ack reported as conflicted (Alg 8 lines 26-27).
	proof := make([]msg.SafeAck, 0, len(m.safeAcks))
	for _, p := range ident.NewSet(mapKeys(m.safeAcks)...).Members() {
		proof = append(proof, m.safeAcks[p])
	}
	for _, sv := range m.safety.ValuesRound(0) {
		key := sv.ValueKey()
		conflicted := false
		for _, ack := range proof {
			if conflictListed(ack, key) {
				conflicted = true
				break
			}
		}
		if !conflicted {
			m.proposed = m.proposed.Insert(msg.ProofValue{SV: sv, Proof: proof})
		}
	}
	m.state = Proposing
	m.ackers.Clear()
	m.ts++
	return []proto.Output{proto.Bcast(msg.AckReqS{Round: 0, Values: m.proposed.Items(), TS: m.ts})}
}

func mapKeys(m map[ident.ProcessID]msg.SafeAck) []ident.ProcessID {
	out := make([]ident.ProcessID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// onAckReq implements the acceptor's proposing-phase reply (Alg 9
// lines 7-14): requests whose values lack proofs of safety are ignored.
func (m *Machine) onAckReq(from ident.ProcessID, req msg.AckReqS) []proto.Output {
	if req.Round != 0 || !m.crypto.AllSafe(req.Values) {
		return nil
	}
	rcvd := PVFromValues(req.Values...)
	if m.accepted.SubsetOf(rcvd) {
		m.accepted = rcvd
		return []proto.Output{proto.Send(from, msg.AckS{Round: 0, Accepted: rcvd.Plain(), TS: req.TS})}
	}
	out := proto.Send(from, msg.NackS{Round: 0, Values: m.accepted.Items(), TS: req.TS})
	m.accepted = m.accepted.Union(rcvd)
	return []proto.Output{out}
}

// onAck implements Alg 8 lines 32-37.
func (m *Machine) onAck(from ident.ProcessID, a msg.AckS) []proto.Output {
	if m.state != Proposing || a.Round != 0 || a.TS != m.ts {
		return nil
	}
	if m.byz[from] || !a.Accepted.Equal(m.proposed.Plain()) {
		m.byz[from] = true
		return nil
	}
	m.ackers.Add(from)
	if m.ackers.Len() < m.quorum {
		return nil
	}
	// Alg 8 lines 47-50.
	m.state = Decided
	m.decision = m.proposed.Plain()
	m.Emit(proto.DecideEvent{Proc: m.cfg.Self, Round: 0, Value: m.decision})
	return nil
}

// onNack implements Alg 8 lines 38-46.
func (m *Machine) onNack(from ident.ProcessID, n msg.NackS) []proto.Output {
	if m.state != Proposing || n.Round != 0 || n.TS != m.ts {
		return nil
	}
	rcvd := PVFromValues(n.Values...)
	merged := rcvd.Union(m.proposed)
	if m.byz[from] || merged.Equal(m.proposed) || !m.crypto.AllSafe(n.Values) {
		m.byz[from] = true
		return nil
	}
	m.proposed = merged
	m.ackers.Clear()
	m.ts++
	m.Emit(proto.RefineEvent{Proc: m.cfg.Self, Round: 0, TS: m.ts})
	return []proto.Output{proto.Bcast(msg.AckReqS{Round: 0, Values: m.proposed.Items(), TS: m.ts})}
}
