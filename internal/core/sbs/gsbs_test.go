package sbs

import (
	"fmt"
	"strings"
	"testing"

	"bgla/internal/check"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/sig"
	"bgla/internal/sim"
)

func gCluster(t *testing.T, n, f int, kc sig.Keychain, seeds map[int][]lattice.Item, byz []proto.Machine, opts func(*GConfig)) ([]*GMachine, []proto.Machine) {
	t.Helper()
	byzIDs := ident.NewSet()
	for _, b := range byz {
		byzIDs.Add(b.ID())
	}
	var correct []*GMachine
	var all []proto.Machine
	for i := 0; i < n; i++ {
		id := ident.ProcessID(i)
		if byzIDs.Has(id) {
			continue
		}
		cfg := GConfig{Self: id, N: n, F: f, Keychain: kc, InitialValues: seeds[i]}
		if opts != nil {
			opts(&cfg)
		}
		m, err := NewG(cfg)
		if err != nil {
			t.Fatalf("NewG: %v", err)
		}
		correct = append(correct, m)
		all = append(all, m)
	}
	all = append(all, byz...)
	return correct, all
}

func gVerify(t *testing.T, correct []*GMachine, byzValues []lattice.Set, minDecisions int) {
	t.Helper()
	run := &check.GLARun{
		DecisionSeqs: map[ident.ProcessID][]lattice.Set{},
		Inputs:       map[ident.ProcessID]lattice.Set{},
		ByzValues:    byzValues,
	}
	for _, m := range correct {
		run.DecisionSeqs[m.ID()] = m.Decisions()
		run.Inputs[m.ID()] = m.Inputs()
	}
	if v := run.All(minDecisions); len(v) != 0 {
		t.Fatalf("GLA violations: %s", strings.Join(v, "; "))
	}
}

func gItem(author int, body string) lattice.Item {
	return lattice.Item{Author: ident.ProcessID(author), Body: body}
}

func TestGSbSSingleRound(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		kc := sig.NewSim(tc.n, 1)
		seeds := map[int][]lattice.Item{}
		for i := 0; i < tc.n; i++ {
			seeds[i] = []lattice.Item{gItem(i, "v0")}
		}
		correct, all := gCluster(t, tc.n, tc.f, kc, seeds, nil, nil)
		res := sim.New(sim.Config{Machines: all, MaxTime: 100_000}).Run()
		if res.Undelivered != 0 {
			t.Fatalf("n=%d: did not quiesce (%d queued)", tc.n, res.Undelivered)
		}
		gVerify(t, correct, nil, 1)
	}
}

func TestGSbSMultiRoundFeeding(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	correct, all := gCluster(t, n, f, kc, nil, nil, nil)
	feeder := &gFeeder{id: 100, f: f}
	all = append(all, feeder)
	var wakeups []sim.Wakeup
	for k := 0; k < 5; k++ {
		wakeups = append(wakeups, sim.Wakeup{At: uint64(1 + 25*k), To: 100, Tag: fmt.Sprintf("w%d", k)})
	}
	res := sim.New(sim.Config{Machines: all, Wakeups: wakeups, MaxTime: 1_000_000}).Run()
	if res.Undelivered != 0 {
		t.Fatalf("did not quiesce: %d queued", res.Undelivered)
	}
	gVerify(t, correct, nil, 1)
	for _, m := range correct {
		for k := 0; k < 5; k++ {
			if !m.Decided().Contains(gItem(100, fmt.Sprintf("w%d", k))) {
				t.Fatalf("%v final decision misses w%d", m.ID(), k)
			}
		}
	}
}

type gFeeder struct {
	proto.Recorder
	id ident.ProcessID
	f  int
}

func (g *gFeeder) ID() ident.ProcessID   { return g.id }
func (g *gFeeder) Start() []proto.Output { return nil }
func (g *gFeeder) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	w, ok := m.(msg.Wakeup)
	if !ok {
		return nil
	}
	var outs []proto.Output
	for i := 0; i <= g.f; i++ {
		outs = append(outs, proto.Send(ident.ProcessID(i), msg.NewValue{Cmd: gItem(int(g.id), w.Tag)}))
	}
	return outs
}

func TestGSbSMinRounds(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	seeds := map[int][]lattice.Item{0: {gItem(0, "x")}}
	correct, all := gCluster(t, n, f, kc, seeds, nil, func(c *GConfig) { c.MinRounds = 3 })
	res := sim.New(sim.Config{Machines: all, MaxTime: 1_000_000}).Run()
	if res.Undelivered != 0 {
		t.Fatal("did not quiesce")
	}
	gVerify(t, correct, nil, 3)
}

func TestGSbSMutesTolerated(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	seeds := map[int][]lattice.Item{}
	for i := 0; i < n-f; i++ {
		seeds[i] = []lattice.Item{gItem(i, "v")}
	}
	byz := []proto.Machine{&sbsMute{id: 3}}
	correct, all := gCluster(t, n, f, kc, seeds, byz, nil)
	res := sim.New(sim.Config{Machines: all, MaxTime: 1_000_000}).Run()
	if res.Undelivered != 0 {
		t.Fatal("did not quiesce")
	}
	gVerify(t, correct, nil, 1)
}

// certForger broadcasts a bogus decided certificate for round 0 trying
// to advance everyone's Safe_r illegitimately.
type certForger struct {
	proto.Recorder
	id ident.ProcessID
}

func (c *certForger) ID() ident.ProcessID { return c.id }
func (c *certForger) Start() []proto.Output {
	v := lattice.FromStrings(c.id, "fake")
	cert := msg.DecidedCert{Round: 0, Value: v, Acks: []msg.SignedAck{
		{Accepted: v, Dest: c.id, TS: 1, Round: 0, Signer: 0, Sig: []byte("x")},
		{Accepted: v, Dest: c.id, TS: 1, Round: 0, Signer: 1, Sig: []byte("y")},
		{Accepted: v, Dest: c.id, TS: 1, Round: 0, Signer: 2, Sig: []byte("z")},
	}}
	return []proto.Output{proto.Bcast(cert)}
}
func (c *certForger) Handle(ident.ProcessID, msg.Msg) []proto.Output { return nil }

func TestGSbSForgedCertificateRejected(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	seeds := map[int][]lattice.Item{}
	for i := 0; i < n-1; i++ {
		seeds[i] = []lattice.Item{gItem(i, "v")}
	}
	byz := []proto.Machine{&certForger{id: 3}}
	correct, all := gCluster(t, n, f, kc, seeds, byz, nil)
	sim.New(sim.Config{Machines: all, MaxTime: 1_000_000}).Run()
	gVerify(t, correct, nil, 1)
	for _, m := range correct {
		if m.Decided().Contains(gItem(3, "fake")) {
			t.Fatalf("%v decided a forged-certificate value", m.ID())
		}
		if m.Rejected() == 0 {
			t.Fatalf("%v did not record the forged cert", m.ID())
		}
	}
}

// farInit sends init values for a far-future round (resource attack).
type farInit struct {
	proto.Recorder
	id     ident.ProcessID
	crypto *Crypto
}

func (fi *farInit) ID() ident.ProcessID { return fi.id }
func (fi *farInit) Start() []proto.Output {
	sv := fi.crypto.SignValue(1000, lattice.FromStrings(fi.id, "far"))
	return []proto.Output{proto.Bcast(msg.InitVal{SV: sv})}
}
func (fi *farInit) Handle(ident.ProcessID, msg.Msg) []proto.Output { return nil }

func TestGSbSFarFutureInitRejected(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	seeds := map[int][]lattice.Item{}
	for i := 0; i < n-1; i++ {
		seeds[i] = []lattice.Item{gItem(i, "v")}
	}
	byz := []proto.Machine{&farInit{id: 3, crypto: NewCrypto(kc, 3, 3)}}
	correct, all := gCluster(t, n, f, kc, seeds, byz, nil)
	sim.New(sim.Config{Machines: all, MaxTime: 1_000_000}).Run()
	gVerify(t, correct, nil, 1)
	for _, m := range correct {
		if m.Rejected() == 0 {
			t.Fatalf("%v accepted the far-future init", m.ID())
		}
	}
}

func TestGSbSLinearMessagesPerDecision(t *testing.T) {
	// §8.2: O(f·n) messages per proposer per decision (no reliable
	// broadcast anywhere). Doubling n must not quadruple traffic.
	counts := map[int]int{}
	for _, n := range []int{8, 16} {
		f := 1
		kc := sig.NewSim(n, 1)
		seeds := map[int][]lattice.Item{}
		for i := 0; i < n; i++ {
			seeds[i] = []lattice.Item{gItem(i, "v")}
		}
		correct, all := gCluster(t, n, f, kc, seeds, nil, nil)
		res := sim.New(sim.Config{Machines: all, MaxTime: 1_000_000}).Run()
		ids := make([]ident.ProcessID, len(correct))
		rounds := 0
		for i, m := range correct {
			ids[i] = m.ID()
			if r := len(m.Decisions()); r > rounds {
				rounds = r
			}
		}
		if rounds == 0 {
			t.Fatalf("n=%d: no decisions", n)
		}
		counts[n] = res.Metrics.MaxSentByProc(ids) / rounds
		if counts[n] > 30*n {
			t.Fatalf("n=%d: per-proposer per-decision messages %d not linear", n, counts[n])
		}
	}
	if ratio := float64(counts[16]) / float64(counts[8]); ratio > 3 {
		t.Fatalf("growth not linear: %v", counts)
	}
}

func TestGSbSDeterministicReplay(t *testing.T) {
	run := func() (int, uint64) {
		kc := sig.NewSim(4, 1)
		seeds := map[int][]lattice.Item{}
		for i := 0; i < 4; i++ {
			seeds[i] = []lattice.Item{gItem(i, "v")}
		}
		_, all := gCluster(t, 4, 1, kc, seeds, nil, func(c *GConfig) { c.MinRounds = 2 })
		res := sim.New(sim.Config{Machines: all, Delay: sim.Uniform{Lo: 1, Hi: 5}, Seed: 11, MaxTime: 1_000_000}).Run()
		return res.Metrics.SentTotal(), res.EndTime
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("replay diverged")
	}
}

func TestGSbSRandomSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		kc := sig.NewSim(4, 1)
		seeds := map[int][]lattice.Item{}
		for i := 0; i < 4; i++ {
			seeds[i] = []lattice.Item{gItem(i, fmt.Sprintf("s%d", seed))}
		}
		correct, all := gCluster(t, 4, 1, kc, seeds, nil, nil)
		res := sim.New(sim.Config{Machines: all, Delay: sim.Uniform{Lo: 1, Hi: 6}, Seed: seed, MaxTime: 1_000_000}).Run()
		if res.Undelivered != 0 {
			t.Fatalf("seed %d: did not quiesce", seed)
		}
		gVerify(t, correct, nil, 1)
	}
}

func TestGSbSValidation(t *testing.T) {
	kc := sig.NewSim(4, 1)
	if _, err := NewG(GConfig{Self: 0, N: 3, F: 1, Keychain: kc}); err == nil {
		t.Fatal("must reject n<3f+1")
	}
	if _, err := NewG(GConfig{Self: 0, N: 4, F: 1}); err == nil {
		t.Fatal("must reject missing keychain")
	}
	for s, want := range map[GState]string{GNewRound: "newround", GInit: "init", GSafetying: "safetying", GProposing: "proposing", GState(7): "gstate(7)"} {
		if s.String() != want {
			t.Fatalf("GState string %v", s)
		}
	}
}
