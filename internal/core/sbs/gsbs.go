package sbs

import (
	"fmt"
	"sort"

	"bgla/internal/core"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/sig"
)

// GState is the proposer state of the generalized algorithm.
type GState int

// Generalized proposer states.
const (
	GNewRound GState = iota
	GInit
	GSafetying
	GProposing
)

// String implements fmt.Stringer.
func (s GState) String() string {
	switch s {
	case GNewRound:
		return "newround"
	case GInit:
		return "init"
	case GSafetying:
		return "safetying"
	case GProposing:
		return "proposing"
	default:
		return fmt.Sprintf("gstate(%d)", int(s))
	}
}

// GConfig configures one generalized SbS process.
type GConfig struct {
	Self ident.ProcessID
	N    int
	F    int
	// Keychain is the shared PKI.
	Keychain sig.Keychain
	// InitialValues seed the first batch.
	InitialValues []lattice.Item
	// MinRounds forces participation in rounds 0..MinRounds-1.
	MinRounds int
	// MaxRoundSkew bounds how far ahead of Safe_r an init value may be
	// before it is discarded (resource guard; 0 = 8).
	MaxRoundSkew int
	// MaxWaiting caps the buffered ack requests (0 = 8192).
	MaxWaiting int
}

type gPending struct {
	from ident.ProcessID
	req  msg.AckReqS
}

// GMachine is one generalized SbS process, implementing the §8.2
// variant: per-round init/safetying phases establish proofs of safety,
// acceptor acks are point-to-point and signed, and broadcast "decided"
// certificates replace the reliable broadcast of GWTS acks — the round
// r+1 is trusted only after a verified certificate for round r.
type GMachine struct {
	proto.Recorder
	cfg    GConfig
	quorum int
	crypto *Crypto

	// Proposer state.
	state    GState
	r        int
	ts       uint32
	pendingV lattice.Set
	inputs   lattice.Set
	proposed PVSet // cumulative proof-carrying proposal
	decided  lattice.Set
	decSeq   []lattice.Set

	safety    *SafetySet
	curSafety []msg.SignedValue                       // snapshot sent in the current SafeReq
	curKeys   []string                                // Keys(curSafety)
	safeAcks  map[int]map[ident.ProcessID]msg.SafeAck // round -> signer -> ack
	ackSigs   map[ident.ProcessID]msg.SignedAck       // current (ts, r) signed acks

	// Acceptor state.
	candidates *Candidates
	accepted   PVSet
	safeR      int
	certs      map[int]msg.DecidedCert

	waiting  []gPending
	rejected int
}

// NewG builds a generalized SbS machine.
func NewG(cfg GConfig) (*GMachine, error) {
	if err := core.ValidateConfig(cfg.N, cfg.F); err != nil {
		return nil, err
	}
	if cfg.Keychain == nil {
		return nil, fmt.Errorf("sbs: keychain required")
	}
	return NewGUnchecked(cfg), nil
}

// NewGUnchecked builds a machine without the resilience-bound check.
func NewGUnchecked(cfg GConfig) *GMachine {
	if cfg.MaxRoundSkew == 0 {
		cfg.MaxRoundSkew = 8
	}
	if cfg.MaxWaiting == 0 {
		cfg.MaxWaiting = 8192
	}
	quorum := core.AckQuorum(cfg.N, cfg.F)
	return &GMachine{
		cfg:        cfg,
		quorum:     quorum,
		crypto:     NewCrypto(cfg.Keychain, cfg.Self, quorum),
		state:      GNewRound,
		r:          -1,
		pendingV:   lattice.FromItems(cfg.InitialValues...),
		inputs:     lattice.FromItems(cfg.InitialValues...),
		safety:     NewSafetySet(),
		safeAcks:   make(map[int]map[ident.ProcessID]msg.SafeAck),
		ackSigs:    make(map[ident.ProcessID]msg.SignedAck),
		candidates: NewCandidates(),
		certs:      make(map[int]msg.DecidedCert),
	}
}

// ID implements proto.Machine.
func (m *GMachine) ID() ident.ProcessID { return m.cfg.Self }

// State returns the proposer state.
func (m *GMachine) State() GState { return m.state }

// Round returns the current round.
func (m *GMachine) Round() int { return m.r }

// SafeRound returns the acceptor's certificate-derived Safe_r.
func (m *GMachine) SafeRound() int { return m.safeR }

// Decisions returns the decision sequence.
func (m *GMachine) Decisions() []lattice.Set { return m.decSeq }

// Decided returns the latest decision.
func (m *GMachine) Decided() lattice.Set { return m.decided }

// Inputs returns all values received by this process.
func (m *GMachine) Inputs() lattice.Set { return m.inputs }

// Rejected counts discarded messages.
func (m *GMachine) Rejected() int { return m.rejected }

// Start begins round 0 when there is anything to propose.
func (m *GMachine) Start() []proto.Output {
	if !m.pendingV.IsEmpty() || m.cfg.MinRounds > 0 {
		return m.startRound(0)
	}
	return nil
}

func (m *GMachine) startRound(round int) []proto.Output {
	m.state = GInit
	m.r = round
	batch := m.pendingV
	m.pendingV = lattice.Empty()
	m.Emit(proto.JoinRoundEvent{Proc: m.cfg.Self, Round: round})
	sv := m.crypto.SignValue(round, batch)
	m.safety.Add(sv)
	outs := []proto.Output{proto.Bcast(msg.InitVal{SV: sv})}
	// Others may have joined earlier: the init quorum can already hold.
	outs = append(outs, m.maybeEnterSafetying()...)
	return outs
}

// Handle implements proto.Machine.
func (m *GMachine) Handle(from ident.ProcessID, in msg.Msg) []proto.Output {
	switch v := in.(type) {
	case msg.NewValue:
		return m.onNewValue(v)
	case msg.InitVal:
		return m.onInit(v)
	case msg.SafeReq:
		return m.onSafeReq(from, v)
	case msg.SafeAck:
		return m.onSafeAck(from, v)
	case msg.AckReqS:
		return m.bufferReq(from, v)
	case msg.SignedAck:
		return m.onSignedAck(from, v)
	case msg.NackS:
		return m.onNack(from, v)
	case msg.DecidedCert:
		return m.onCert(v)
	case msg.Wakeup:
		return nil
	default:
		m.rejected++
		m.Emit(proto.RejectEvent{Proc: m.cfg.Self, From: from, Kind: in.Kind(), Reason: "unexpected kind"})
		return nil
	}
}

func (m *GMachine) onNewValue(v msg.NewValue) []proto.Output {
	it := v.Cmd
	m.inputs = m.inputs.Union(lattice.Singleton(it))
	if m.proposed.Plain().Contains(it) || m.pendingV.Contains(it) {
		return nil
	}
	m.pendingV = m.pendingV.Union(lattice.Singleton(it))
	if m.state == GNewRound {
		return m.startRound(m.r + 1)
	}
	return nil
}

func (m *GMachine) onInit(iv msg.InitVal) []proto.Output {
	sv := iv.SV
	if sv.Round < 0 || sv.Round > m.safeR+m.cfg.MaxRoundSkew || !m.crypto.VerifyValue(sv) {
		m.rejected++
		return nil
	}
	m.safety.Add(sv)
	if m.state == GNewRound && sv.Round == m.r+1 {
		return m.startRound(m.r + 1)
	}
	return m.maybeEnterSafetying()
}

// maybeEnterSafetying transitions Init -> Safetying once n-f init
// values of the current round are held (Alg 8 line 16 per round). The
// request content is snapshotted: late inits for the round keep landing
// in the safety set but safe_acks are matched against the frozen keys.
func (m *GMachine) maybeEnterSafetying() []proto.Output {
	if m.state != GInit || m.safety.LenRound(m.r) < m.cfg.N-m.cfg.F {
		return nil
	}
	m.state = GSafetying
	m.curSafety = m.safety.ValuesRound(m.r)
	m.curKeys = Keys(m.curSafety)
	return []proto.Output{proto.Bcast(msg.SafeReq{Round: m.r, Values: m.curSafety})}
}

func (m *GMachine) onSafeReq(from ident.ProcessID, req msg.SafeReq) []proto.Output {
	if req.Round < 0 {
		return nil
	}
	for _, sv := range req.Values {
		if sv.Round != req.Round || !m.crypto.VerifyValue(sv) {
			return nil
		}
	}
	conflicts := m.candidates.ConflictsWith(req.Values)
	ack := m.crypto.SignSafeAck(req.Round, Keys(req.Values), conflicts)
	m.candidates.Observe(req.Values)
	return []proto.Output{proto.Send(from, ack)}
}

func (m *GMachine) onSafeAck(from ident.ProcessID, sa msg.SafeAck) []proto.Output {
	if m.state != GSafetying || sa.Round != m.r || sa.Signer != from {
		return nil
	}
	if !sameKeys(sa.RcvdKeys, m.curKeys) || !m.crypto.VerifySafeAck(sa) {
		m.rejected++
		return nil
	}
	byRound := m.safeAcks[m.r]
	if byRound == nil {
		byRound = make(map[ident.ProcessID]msg.SafeAck)
		m.safeAcks[m.r] = byRound
	}
	byRound[from] = sa
	if len(byRound) < m.quorum {
		return nil
	}
	// Build proofs and move to proposing.
	var signers []ident.ProcessID
	for p := range byRound {
		signers = append(signers, p)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	proof := make([]msg.SafeAck, 0, len(signers))
	for _, p := range signers {
		proof = append(proof, byRound[p])
	}
	for _, sv := range m.curSafety {
		key := sv.ValueKey()
		conflicted := false
		for _, ack := range proof {
			if conflictListed(ack, key) {
				conflicted = true
				break
			}
		}
		if !conflicted {
			m.proposed = m.proposed.Insert(msg.ProofValue{SV: sv, Proof: proof})
		}
	}
	m.state = GProposing
	m.ts++
	for k := range m.ackSigs {
		delete(m.ackSigs, k)
	}
	outs := []proto.Output{proto.Bcast(msg.AckReqS{Round: m.r, Values: m.proposed.Items(), TS: m.ts})}
	// A certificate for this round may already be known: adopt it.
	outs = append(outs, m.tryAdoptCert()...)
	return outs
}

// bufferReq queues acceptor work gated on Safe_r (§8.2 round trust).
func (m *GMachine) bufferReq(from ident.ProcessID, req msg.AckReqS) []proto.Output {
	if req.Round < 0 {
		m.rejected++
		return nil
	}
	if len(m.waiting) >= m.cfg.MaxWaiting {
		m.rejected++
		m.Emit(proto.RejectEvent{Proc: m.cfg.Self, From: from, Kind: req.Kind(), Reason: "waiting buffer full"})
		return nil
	}
	m.waiting = append(m.waiting, gPending{from: from, req: req})
	return m.drainWaiting()
}

func (m *GMachine) drainWaiting() []proto.Output {
	var outs []proto.Output
	for {
		progressed := false
		kept := m.waiting[:0]
		for i, p := range m.waiting {
			if progressed {
				kept = append(kept, m.waiting[i:]...)
				break
			}
			if p.req.Round <= m.safeR {
				progressed = true
				outs = append(outs, m.acceptorOn(p.from, p.req)...)
				continue
			}
			kept = append(kept, p)
		}
		m.waiting = kept
		if !progressed {
			return outs
		}
	}
}

// acceptorOn answers a trusted ack request with a signed ack or a
// proof-carrying nack, piggybacking the round's certificate if known.
func (m *GMachine) acceptorOn(from ident.ProcessID, req msg.AckReqS) []proto.Output {
	if !m.crypto.AllSafe(req.Values) {
		m.rejected++
		return nil
	}
	var outs []proto.Output
	rcvd := PVFromValues(req.Values...)
	if m.accepted.SubsetOf(rcvd) {
		m.accepted = rcvd
		outs = append(outs, proto.Send(from, m.crypto.SignAck(from, req.TS, req.Round, rcvd.Plain())))
	} else {
		outs = append(outs, proto.Send(from, msg.NackS{Round: req.Round, Values: m.accepted.Items(), TS: req.TS}))
		m.accepted = m.accepted.Union(rcvd)
	}
	if cert, ok := m.certs[req.Round]; ok {
		outs = append(outs, proto.Send(from, cert))
	}
	return outs
}

// onSignedAck collects the §8.2 point-to-point acks; a quorum yields a
// decided certificate that is broadcast before deciding.
func (m *GMachine) onSignedAck(from ident.ProcessID, a msg.SignedAck) []proto.Output {
	if m.state != GProposing || a.Round != m.r || a.TS != m.ts || a.Dest != m.cfg.Self {
		return nil
	}
	if a.Signer != from || !a.Accepted.Equal(m.proposed.Plain()) || !m.crypto.VerifyAck(a) {
		m.rejected++
		return nil
	}
	m.ackSigs[from] = a
	if len(m.ackSigs) < m.quorum {
		return nil
	}
	var signers []ident.ProcessID
	for p := range m.ackSigs {
		signers = append(signers, p)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	acks := make([]msg.SignedAck, 0, len(signers))
	for _, p := range signers {
		acks = append(acks, m.ackSigs[p])
	}
	cert := msg.DecidedCert{Round: m.r, Value: m.proposed.Plain(), Acks: acks}
	outs := []proto.Output{proto.Bcast(cert)}
	outs = append(outs, m.onCert(cert)...) // record + decide locally
	return outs
}

// onCert verifies a decided certificate, advances Safe_r, and lets the
// proposer adopt the certified value for its current round.
func (m *GMachine) onCert(cert msg.DecidedCert) []proto.Output {
	if cert.Round < 0 {
		return nil
	}
	if _, known := m.certs[cert.Round]; !known {
		if !m.crypto.VerifyCert(cert) {
			m.rejected++
			return nil
		}
		m.certs[cert.Round] = cert
	}
	for {
		if _, ok := m.certs[m.safeR]; !ok {
			break
		}
		m.safeR++
	}
	var outs []proto.Output
	outs = append(outs, m.tryAdoptCert()...)
	outs = append(outs, m.drainWaiting()...)
	return outs
}

// tryAdoptCert decides the certified value of the current round when it
// preserves Local Stability.
func (m *GMachine) tryAdoptCert() []proto.Output {
	if m.state != GProposing {
		return nil
	}
	cert, ok := m.certs[m.r]
	if !ok || !m.decided.SubsetOf(cert.Value) {
		return nil
	}
	return m.decide(cert.Value)
}

func (m *GMachine) decide(v lattice.Set) []proto.Output {
	m.decided = v
	m.decSeq = append(m.decSeq, v)
	m.state = GNewRound
	m.Emit(proto.DecideEvent{Proc: m.cfg.Self, Round: m.r, Value: v})
	return m.maybeStartNext()
}

func (m *GMachine) maybeStartNext() []proto.Output {
	if m.state != GNewRound {
		return nil
	}
	next := m.r + 1
	if !m.pendingV.IsEmpty() || m.safety.LenRound(next) > 0 || next < m.cfg.MinRounds ||
		!m.proposed.Plain().SubsetOf(m.decided) {
		return m.startRound(next)
	}
	return nil
}

func (m *GMachine) onNack(from ident.ProcessID, n msg.NackS) []proto.Output {
	if m.state != GProposing || n.Round != m.r || n.TS != m.ts {
		return nil
	}
	rcvd := PVFromValues(n.Values...)
	merged := rcvd.Union(m.proposed)
	if merged.Equal(m.proposed) || !m.crypto.AllSafe(n.Values) {
		m.rejected++
		return nil
	}
	m.proposed = merged
	m.ts++
	for k := range m.ackSigs {
		delete(m.ackSigs, k)
	}
	m.Emit(proto.RefineEvent{Proc: m.cfg.Self, Round: m.r, TS: m.ts})
	return []proto.Output{proto.Bcast(msg.AckReqS{Round: m.r, Values: m.proposed.Items(), TS: m.ts})}
}
