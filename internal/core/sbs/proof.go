// Package sbs implements the Safety-by-Signature algorithms of §8: the
// one-shot SbS (Algorithms 8-10) with O(n) messages per proposer when
// f = O(1), and the generalized variant sketched in §8.2 (point-to-point
// signed acks plus broadcast "decided" certificates).
//
// Values are made safe not by a reliable broadcast but by transferable
// cryptographic evidence: a value is safe when ⌊(n+f)/2⌋+1 acceptors
// signed safe_acks that list it and never report it in a conflict
// (Definition 7). Lemma 13 (at most one safe value per signer) follows
// from quorum intersection on the acceptors' first-seen candidate sets.
package sbs

import (
	"fmt"
	"sort"
	"strings"

	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/sig"
)

// Crypto bundles a process's signer with the shared keychain and
// implements every signature format and verification rule of Algs 8-10.
// Verification results are memoized behind a digest-keyed
// verified-signature cache (sig.Cache): AllSafe re-examines the same
// proofs on every refined request, and signature checks dominate
// otherwise. The cache is generation-bounded, so a Byzantine flood of
// unique forgeries cannot exhaust memory.
type Crypto struct {
	kc     *sig.Cache
	signer sig.Signer
	quorum int
}

// memoCap bounds the verification cache per generation.
const memoCap = 1 << 16

// NewCrypto builds the crypto helper of one process.
func NewCrypto(kc sig.Keychain, self ident.ProcessID, quorum int) *Crypto {
	return &Crypto{kc: sig.NewCache(kc, memoCap), signer: kc.SignerFor(self), quorum: quorum}
}

// verifyMemo checks p's signature over data with memoization.
func (c *Crypto) verifyMemo(p ident.ProcessID, data, sigBytes []byte) bool {
	return c.kc.Verify(p, data, sigBytes)
}

// Signature preimages commit to the value's content digest instead of
// its full canonical byte string, making signing and verification O(1)
// in the set size; the domain tags are versioned (/v2) so the digest
// preimages can never collide with signatures produced under the
// original full-serialization format.
func valueBytes(author ident.ProcessID, round int, v lattice.Set) []byte {
	return []byte(fmt.Sprintf("bgla/sbs/value/v2|%d|%d|%s", author, round, v.Digest().Hex()))
}

// SignValue produces the proposer's signed value (Alg 8 line 9).
func (c *Crypto) SignValue(round int, v lattice.Set) msg.SignedValue {
	return msg.SignedValue{
		Author: c.signer.ID(),
		Round:  round,
		Value:  v,
		Sig:    c.signer.Sign(valueBytes(c.signer.ID(), round, v)),
	}
}

// VerifyValue checks a signed value's authenticity (Alg 10 Verify).
func (c *Crypto) VerifyValue(sv msg.SignedValue) bool {
	return c.verifyMemo(sv.Author, valueBytes(sv.Author, sv.Round, sv.Value), sv.Sig)
}

// VerifyConfPair implements Alg 10 VerifyConfPair: both values carry
// valid signatures of the same author (and round) but differ.
func (c *Crypto) VerifyConfPair(p msg.ConflictPair) bool {
	return c.VerifyValue(p.X) && c.VerifyValue(p.Y) &&
		p.X.Author == p.Y.Author && p.X.Round == p.Y.Round &&
		!p.X.Value.Equal(p.Y.Value)
}

func safeAckBytes(signer ident.ProcessID, round int, keys []string, conflicts []msg.ConflictPair) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "bgla/sbs/safeack/v2|%d|%d|", signer, round)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	b.WriteByte('|')
	for _, cp := range conflicts {
		b.WriteString(cp.X.ValueKey())
		b.WriteByte('~')
		b.WriteString(cp.Y.ValueKey())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// SignSafeAck produces the acceptor's signed safe_ack (Alg 9 line 5).
// keys must already be sorted (SafetySet.Keys returns them sorted).
func (c *Crypto) SignSafeAck(round int, keys []string, conflicts []msg.ConflictPair) msg.SafeAck {
	return msg.SafeAck{
		Round:     round,
		RcvdKeys:  keys,
		Conflicts: conflicts,
		Signer:    c.signer.ID(),
		Sig:       c.signer.Sign(safeAckBytes(c.signer.ID(), round, keys, conflicts)),
	}
}

// VerifySafeAck checks the safe_ack signature and its conflict pairs.
func (c *Crypto) VerifySafeAck(sa msg.SafeAck) bool {
	if !c.verifyMemo(sa.Signer, safeAckBytes(sa.Signer, sa.Round, sa.RcvdKeys, sa.Conflicts), sa.Sig) {
		return false
	}
	for _, cp := range sa.Conflicts {
		if !c.VerifyConfPair(cp) {
			return false
		}
	}
	return true
}

func signedAckBytes(signer ident.ProcessID, dest ident.ProcessID, ts uint32, round int, v lattice.Set) []byte {
	return []byte(fmt.Sprintf("bgla/sbs/ack/v2|%d|%d|%d|%d|%s", signer, dest, ts, round, v.Digest().Hex()))
}

// SignAck produces the §8.2 point-to-point signed ack.
func (c *Crypto) SignAck(dest ident.ProcessID, ts uint32, round int, v lattice.Set) msg.SignedAck {
	return msg.SignedAck{
		Accepted: v,
		Dest:     dest,
		TS:       ts,
		Round:    round,
		Signer:   c.signer.ID(),
		Sig:      c.signer.Sign(signedAckBytes(c.signer.ID(), dest, ts, round, v)),
	}
}

// VerifyAck checks a §8.2 signed ack.
func (c *Crypto) VerifyAck(a msg.SignedAck) bool {
	return c.verifyMemo(a.Signer, signedAckBytes(a.Signer, a.Dest, a.TS, a.Round, a.Accepted), a.Sig)
}

// VerifyCert checks a §8.2 decided certificate: ⌊(n+f)/2⌋+1 valid acks
// from distinct signers, all for the same (value, dest, ts, round).
// The structural screen runs first; the surviving ack signatures
// verify as one batch, so the quorum's signature work amortizes (and
// re-delivered certificates answer entirely from the cache).
func (c *Crypto) VerifyCert(cert msg.DecidedCert) bool {
	if len(cert.Acks) < c.quorum {
		return false
	}
	seen := ident.NewSet()
	first := cert.Acks[0]
	reqs := make([]sig.Request, 0, len(cert.Acks))
	for _, a := range cert.Acks {
		if a.Round != cert.Round || !a.Accepted.Equal(cert.Value) {
			return false
		}
		if a.Dest != first.Dest || a.TS != first.TS {
			return false
		}
		if !seen.Add(a.Signer) {
			return false
		}
		reqs = append(reqs, sig.Request{
			Signer: a.Signer,
			Data:   signedAckBytes(a.Signer, a.Dest, a.TS, a.Round, a.Accepted),
			Sig:    a.Sig,
		})
	}
	for _, ok := range c.kc.VerifyBatch(reqs) {
		if !ok {
			return false
		}
	}
	return seen.Len() >= c.quorum
}

// conflictListed reports whether key appears in any conflict of sa.
func conflictListed(sa msg.SafeAck, key string) bool {
	for _, cp := range sa.Conflicts {
		if cp.X.ValueKey() == key || cp.Y.ValueKey() == key {
			return true
		}
	}
	return false
}

func ackLists(sa msg.SafeAck, key string) bool {
	for _, k := range sa.RcvdKeys {
		if k == key {
			return true
		}
	}
	return false
}

// AllSafe implements Alg 10 AllSafe over proof-carrying values: every
// value must come with ⌊(n+f)/2⌋+1 valid safe_acks from distinct
// signers of the value's round, each listing the value and none
// reporting it conflicted; the value's own signature must verify.
func (c *Crypto) AllSafe(values []msg.ProofValue) bool {
	for _, pv := range values {
		if !c.VerifyValue(pv.SV) {
			return false
		}
		key := pv.SV.ValueKey()
		seen := ident.NewSet()
		for _, sa := range pv.Proof {
			if sa.Round != pv.SV.Round || !ackLists(sa, key) || conflictListed(sa, key) {
				return false
			}
			if !seen.Add(sa.Signer) {
				return false
			}
			if !c.VerifySafeAck(sa) {
				return false
			}
		}
		if seen.Len() < c.quorum {
			return false
		}
	}
	return true
}

// --- Safety set with RemoveConflicts semantics ---------------------------

type authorRound struct {
	author ident.ProcessID
	round  int
}

// SafetySet is the proposer's Safety_set (Alg 8): at most one signed
// value per (author, round); a conflicting pair removes both values and
// poisons the author for that round (RemoveConflicts, Alg 10).
type SafetySet struct {
	values   map[authorRound]msg.SignedValue
	poisoned map[authorRound]bool
}

// NewSafetySet returns an empty set.
func NewSafetySet() *SafetySet {
	return &SafetySet{
		values:   make(map[authorRound]msg.SignedValue),
		poisoned: make(map[authorRound]bool),
	}
}

// Add inserts a (verified) signed value; on conflict the existing value
// is removed and the author poisoned. It reports whether sv is in the
// set afterwards.
func (s *SafetySet) Add(sv msg.SignedValue) bool {
	k := authorRound{author: sv.Author, round: sv.Round}
	if s.poisoned[k] {
		return false
	}
	if cur, ok := s.values[k]; ok {
		if cur.Value.Equal(sv.Value) {
			return true
		}
		delete(s.values, k)
		s.poisoned[k] = true
		return false
	}
	s.values[k] = sv
	return true
}

// LenRound counts values of the given round.
func (s *SafetySet) LenRound(round int) int {
	n := 0
	for k := range s.values {
		if k.round == round {
			n++
		}
	}
	return n
}

// ValuesRound returns the round's values sorted by ValueKey.
func (s *SafetySet) ValuesRound(round int) []msg.SignedValue {
	var out []msg.SignedValue
	for k, v := range s.values {
		if k.round == round {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ValueKey() < out[j].ValueKey() })
	return out
}

// Keys returns the sorted ValueKeys of a slice of signed values.
func Keys(svs []msg.SignedValue) []string {
	keys := make([]string, len(svs))
	for i, sv := range svs {
		keys[i] = sv.ValueKey()
	}
	sort.Strings(keys)
	return keys
}

// sameKeys compares two sorted key slices.
func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Acceptor candidate tracking ------------------------------------------

// Candidates is the acceptor's SafeCandidates (Alg 9): the first-seen
// signed value per (author, round); later different values from the
// same author are reported as conflicts but never replace the first
// (this is what makes Lemma 13 go through).
type Candidates struct {
	first map[authorRound]msg.SignedValue
}

// NewCandidates returns an empty tracker.
func NewCandidates() *Candidates {
	return &Candidates{first: make(map[authorRound]msg.SignedValue)}
}

// ConflictsWith returns the conflict pairs between the request values
// and the candidate set (plus conflicts inside the request itself),
// in deterministic order.
func (c *Candidates) ConflictsWith(values []msg.SignedValue) []msg.ConflictPair {
	var out []msg.ConflictPair
	for i, v := range values {
		k := authorRound{author: v.Author, round: v.Round}
		if cur, ok := c.first[k]; ok && !cur.Value.Equal(v.Value) {
			out = append(out, msg.ConflictPair{X: v, Y: cur})
		}
		for j := i + 1; j < len(values); j++ {
			w := values[j]
			if v.Author == w.Author && v.Round == w.Round && !v.Value.Equal(w.Value) {
				out = append(out, msg.ConflictPair{X: v, Y: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a := out[i].X.ValueKey() + out[i].Y.ValueKey()
		b := out[j].X.ValueKey() + out[j].Y.ValueKey()
		return a < b
	})
	return out
}

// Observe records the request values (first per author wins).
func (c *Candidates) Observe(values []msg.SignedValue) {
	for _, v := range values {
		k := authorRound{author: v.Author, round: v.Round}
		if _, ok := c.first[k]; !ok {
			c.first[k] = v
		}
	}
}

// --- Proof-carrying value sets ---------------------------------------------

// PVSet is an ordered set of proof-carrying values, compared by value
// identity (ValueKey); it is the representation of Proposed_set and the
// acceptor's Accepted_set in SbS.
type PVSet struct {
	items []msg.ProofValue // sorted by SV.ValueKey(), unique
}

// PVFromValues builds a PVSet.
func PVFromValues(values ...msg.ProofValue) PVSet {
	var s PVSet
	for _, v := range values {
		s = s.Insert(v)
	}
	return s
}

// Insert returns s ∪ {v}.
func (s PVSet) Insert(v msg.ProofValue) PVSet {
	key := v.SV.ValueKey()
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i].SV.ValueKey() >= key })
	if i < len(s.items) && s.items[i].SV.ValueKey() == key {
		return s
	}
	out := make([]msg.ProofValue, 0, len(s.items)+1)
	out = append(out, s.items[:i]...)
	out = append(out, v)
	out = append(out, s.items[i:]...)
	return PVSet{items: out}
}

// Union returns s ∪ t.
func (s PVSet) Union(t PVSet) PVSet {
	out := s
	for _, v := range t.items {
		out = out.Insert(v)
	}
	return out
}

// SubsetOf reports s ⊆ t by value identity.
func (s PVSet) SubsetOf(t PVSet) bool {
	keys := make(map[string]bool, len(t.items))
	for _, v := range t.items {
		keys[v.SV.ValueKey()] = true
	}
	for _, v := range s.items {
		if !keys[v.SV.ValueKey()] {
			return false
		}
	}
	return true
}

// Equal reports equality by value identity.
func (s PVSet) Equal(t PVSet) bool {
	return len(s.items) == len(t.items) && s.SubsetOf(t)
}

// Len returns the number of values.
func (s PVSet) Len() int { return len(s.items) }

// Items returns the values (not to be mutated).
func (s PVSet) Items() []msg.ProofValue { return s.items }

// Plain returns the lattice element represented by the set: the union
// of all member values (the DECIDE(Only_values) step of Alg 8 line 49).
func (s PVSet) Plain() lattice.Set {
	out := lattice.Empty()
	for _, v := range s.items {
		out = out.Union(v.SV.Value)
	}
	return out
}
