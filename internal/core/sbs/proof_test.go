package sbs

import (
	"testing"

	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/sig"
)

func testCrypto(t *testing.T, n, f int) []*Crypto {
	t.Helper()
	kc := sig.NewSim(n, 1)
	quorum := (n+f)/2 + 1
	out := make([]*Crypto, n)
	for i := 0; i < n; i++ {
		out[i] = NewCrypto(kc, ident.ProcessID(i), quorum)
	}
	return out
}

func TestSignVerifyValue(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	v := lattice.FromStrings(0, "x")
	sv := cs[0].SignValue(2, v)
	if sv.Author != 0 || sv.Round != 2 || !sv.Value.Equal(v) {
		t.Fatalf("SignValue fields: %+v", sv)
	}
	if !cs[1].VerifyValue(sv) {
		t.Fatal("valid value rejected")
	}
	sv.Round = 3 // signature binds the round
	if cs[1].VerifyValue(sv) {
		t.Fatal("round-tampered value accepted")
	}
	sv.Round = 2
	sv.Author = 1 // and the author
	if cs[1].VerifyValue(sv) {
		t.Fatal("author-tampered value accepted")
	}
}

func TestVerifyConfPair(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	a := cs[0].SignValue(0, lattice.FromStrings(0, "a"))
	b := cs[0].SignValue(0, lattice.FromStrings(0, "b"))
	c := cs[1].SignValue(0, lattice.FromStrings(1, "c"))
	d := cs[0].SignValue(1, lattice.FromStrings(0, "a"))
	if !cs[2].VerifyConfPair(msg.ConflictPair{X: a, Y: b}) {
		t.Fatal("real conflict rejected")
	}
	if cs[2].VerifyConfPair(msg.ConflictPair{X: a, Y: a}) {
		t.Fatal("identical values are not a conflict")
	}
	if cs[2].VerifyConfPair(msg.ConflictPair{X: a, Y: c}) {
		t.Fatal("different authors are not a conflict")
	}
	if cs[2].VerifyConfPair(msg.ConflictPair{X: a, Y: d}) {
		t.Fatal("different rounds are not a conflict")
	}
	forged := b
	forged.Sig = []byte("junk")
	if cs[2].VerifyConfPair(msg.ConflictPair{X: a, Y: forged}) {
		t.Fatal("forged member accepted")
	}
}

// buildProof returns a quorum of safe_acks listing sv.
func buildProof(cs []*Crypto, sv msg.SignedValue, signers []int) []msg.SafeAck {
	keys := Keys([]msg.SignedValue{sv})
	var proof []msg.SafeAck
	for _, s := range signers {
		proof = append(proof, cs[s].SignSafeAck(sv.Round, keys, nil))
	}
	return proof
}

func TestAllSafeAcceptsValidProof(t *testing.T) {
	cs := testCrypto(t, 4, 1) // quorum 3
	sv := cs[0].SignValue(0, lattice.FromStrings(0, "v"))
	pv := msg.ProofValue{SV: sv, Proof: buildProof(cs, sv, []int{1, 2, 3})}
	if !cs[1].AllSafe([]msg.ProofValue{pv}) {
		t.Fatal("valid proof rejected")
	}
	if !cs[1].AllSafe(nil) {
		t.Fatal("empty set is vacuously safe")
	}
}

func TestAllSafeRejections(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	sv := cs[0].SignValue(0, lattice.FromStrings(0, "v"))
	full := buildProof(cs, sv, []int{1, 2, 3})

	// Below quorum.
	if cs[1].AllSafe([]msg.ProofValue{{SV: sv, Proof: full[:2]}}) {
		t.Fatal("sub-quorum proof accepted")
	}
	// Duplicate signers.
	dup := []msg.SafeAck{full[0], full[0], full[1]}
	if cs[1].AllSafe([]msg.ProofValue{{SV: sv, Proof: dup}}) {
		t.Fatal("duplicate-signer proof accepted")
	}
	// Value not listed by one ack.
	other := cs[1].SignValue(0, lattice.FromStrings(1, "w"))
	wrong := append([]msg.SafeAck{}, full[:2]...)
	wrong = append(wrong, cs[3].SignSafeAck(0, Keys([]msg.SignedValue{other}), nil))
	if cs[1].AllSafe([]msg.ProofValue{{SV: sv, Proof: wrong}}) {
		t.Fatal("proof with non-listing ack accepted")
	}
	// Conflict reported by one ack.
	conf := cs[0].SignValue(0, lattice.FromStrings(0, "other"))
	cp := msg.ConflictPair{X: sv, Y: conf}
	conflicted := append([]msg.SafeAck{}, full[:2]...)
	conflicted = append(conflicted, cs[3].SignSafeAck(0, Keys([]msg.SignedValue{sv}), []msg.ConflictPair{cp}))
	if cs[1].AllSafe([]msg.ProofValue{{SV: sv, Proof: conflicted}}) {
		t.Fatal("conflicted proof accepted")
	}
	// Tampered ack signature.
	bad := append([]msg.SafeAck{}, full...)
	bad[2].Sig = []byte("junk")
	if cs[1].AllSafe([]msg.ProofValue{{SV: sv, Proof: bad}}) {
		t.Fatal("forged ack accepted")
	}
	// Forged value itself.
	fv := sv
	fv.Sig = []byte("junk")
	if cs[1].AllSafe([]msg.ProofValue{{SV: fv, Proof: full}}) {
		t.Fatal("forged value accepted")
	}
	// Round mismatch between value and acks.
	rv := cs[0].SignValue(1, lattice.FromStrings(0, "v"))
	if cs[1].AllSafe([]msg.ProofValue{{SV: rv, Proof: buildProof(cs, sv, []int{1, 2, 3})}}) {
		t.Fatal("round-mismatched proof accepted")
	}
}

func TestSafetySetRemoveConflicts(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	s := NewSafetySet()
	a := cs[0].SignValue(0, lattice.FromStrings(0, "a"))
	a2 := cs[0].SignValue(0, lattice.FromStrings(0, "a2"))
	b := cs[1].SignValue(0, lattice.FromStrings(1, "b"))
	if !s.Add(a) || !s.Add(b) {
		t.Fatal("fresh adds")
	}
	if !s.Add(a) {
		t.Fatal("idempotent re-add")
	}
	if s.Add(a2) {
		t.Fatal("conflicting add must fail")
	}
	if s.LenRound(0) != 1 {
		t.Fatalf("conflict must remove both: len=%d", s.LenRound(0))
	}
	if s.Add(a) {
		t.Fatal("poisoned author must stay excluded")
	}
	// Other rounds unaffected.
	a1 := cs[0].SignValue(1, lattice.FromStrings(0, "a"))
	if !s.Add(a1) || s.LenRound(1) != 1 {
		t.Fatal("poisoning must be per round")
	}
	vals := s.ValuesRound(0)
	if len(vals) != 1 || vals[0].Author != 1 {
		t.Fatalf("ValuesRound = %+v", vals)
	}
}

func TestCandidatesFirstSeenWins(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	c := NewCandidates()
	a := cs[0].SignValue(0, lattice.FromStrings(0, "a"))
	a2 := cs[0].SignValue(0, lattice.FromStrings(0, "a2"))
	if got := c.ConflictsWith([]msg.SignedValue{a}); len(got) != 0 {
		t.Fatal("no conflicts on empty candidates")
	}
	c.Observe([]msg.SignedValue{a})
	got := c.ConflictsWith([]msg.SignedValue{a2})
	if len(got) != 1 || !got[0].Y.Value.Equal(a.Value) {
		t.Fatalf("conflict with first-seen missing: %+v", got)
	}
	c.Observe([]msg.SignedValue{a2}) // must NOT replace first
	if got := c.ConflictsWith([]msg.SignedValue{a}); len(got) != 0 {
		t.Fatal("first-seen value must remain the candidate")
	}
	// Conflicts inside one request.
	got = c.ConflictsWith([]msg.SignedValue{a, a2})
	if len(got) < 1 {
		t.Fatal("intra-request conflict missing")
	}
}

func TestPVSetOperations(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	mk := func(i int, body string) msg.ProofValue {
		return msg.ProofValue{SV: cs[i].SignValue(0, lattice.FromStrings(ident.ProcessID(i), body))}
	}
	a, b, c := mk(0, "a"), mk(1, "b"), mk(2, "c")
	s := PVFromValues(a, b)
	if s.Len() != 2 {
		t.Fatal("len")
	}
	if !s.Equal(PVFromValues(b, a)) {
		t.Fatal("order independence")
	}
	if s.Insert(a).Len() != 2 {
		t.Fatal("duplicate insert")
	}
	u := s.Union(PVFromValues(c))
	if u.Len() != 3 || !s.SubsetOf(u) || u.SubsetOf(s) {
		t.Fatal("union/subset")
	}
	plain := u.Plain()
	for i, body := range []string{"a", "b", "c"} {
		if !plain.Contains(lattice.Item{Author: ident.ProcessID(i), Body: body}) {
			t.Fatalf("plain missing %s", body)
		}
	}
	if PVFromValues().Len() != 0 || !PVFromValues().Plain().IsEmpty() {
		t.Fatal("empty PVSet")
	}
}

func TestVerifyCert(t *testing.T) {
	cs := testCrypto(t, 4, 1) // quorum 3
	v := lattice.FromStrings(0, "v")
	mkAck := func(i int, ts uint32, round int, val lattice.Set) msg.SignedAck {
		return cs[i].SignAck(0, ts, round, val)
	}
	good := msg.DecidedCert{Round: 1, Value: v, Acks: []msg.SignedAck{
		mkAck(1, 5, 1, v), mkAck(2, 5, 1, v), mkAck(3, 5, 1, v),
	}}
	if !cs[0].VerifyCert(good) {
		t.Fatal("valid cert rejected")
	}
	// Below quorum.
	if cs[0].VerifyCert(msg.DecidedCert{Round: 1, Value: v, Acks: good.Acks[:2]}) {
		t.Fatal("sub-quorum cert accepted")
	}
	// Duplicate signer.
	dup := msg.DecidedCert{Round: 1, Value: v, Acks: []msg.SignedAck{good.Acks[0], good.Acks[0], good.Acks[1]}}
	if cs[0].VerifyCert(dup) {
		t.Fatal("duplicate-signer cert accepted")
	}
	// Mismatched value.
	w := lattice.FromStrings(9, "w")
	mixed := msg.DecidedCert{Round: 1, Value: w, Acks: good.Acks}
	if cs[0].VerifyCert(mixed) {
		t.Fatal("value-mismatched cert accepted")
	}
	// Mixed ts.
	odd := msg.DecidedCert{Round: 1, Value: v, Acks: []msg.SignedAck{
		mkAck(1, 5, 1, v), mkAck(2, 6, 1, v), mkAck(3, 5, 1, v),
	}}
	if cs[0].VerifyCert(odd) {
		t.Fatal("mixed-ts cert accepted")
	}
	// Forged signature.
	forged := good
	forged.Acks = append([]msg.SignedAck{}, good.Acks...)
	forged.Acks[1].Sig = []byte("junk")
	if cs[0].VerifyCert(forged) {
		t.Fatal("forged cert accepted")
	}
}

func TestVerifySafeAck(t *testing.T) {
	cs := testCrypto(t, 4, 1)
	sv := cs[0].SignValue(0, lattice.FromStrings(0, "v"))
	keys := Keys([]msg.SignedValue{sv})
	sa := cs[1].SignSafeAck(0, keys, nil)
	if !cs[2].VerifySafeAck(sa) {
		t.Fatal("valid safe_ack rejected")
	}
	tampered := sa
	tampered.RcvdKeys = append([]string{}, sa.RcvdKeys...)
	tampered.RcvdKeys[0] = "other"
	if cs[2].VerifySafeAck(tampered) {
		t.Fatal("tampered keys accepted")
	}
	// Invalid conflict pair inside an otherwise-signed ack.
	bogusPair := msg.ConflictPair{X: sv, Y: sv}
	withBad := cs[1].SignSafeAck(0, keys, []msg.ConflictPair{bogusPair})
	if cs[2].VerifySafeAck(withBad) {
		t.Fatal("safe_ack with invalid conflict pair accepted")
	}
}
