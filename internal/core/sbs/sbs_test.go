package sbs

import (
	"strings"
	"testing"

	"bgla/internal/check"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/sig"
	"bgla/internal/sim"
)

func sbsCluster(t *testing.T, n, f int, kc sig.Keychain, byz []proto.Machine) ([]*Machine, []proto.Machine) {
	t.Helper()
	byzIDs := ident.NewSet()
	for _, b := range byz {
		byzIDs.Add(b.ID())
	}
	var correct []*Machine
	var all []proto.Machine
	for i := 0; i < n; i++ {
		id := ident.ProcessID(i)
		if byzIDs.Has(id) {
			continue
		}
		m, err := New(Config{Self: id, N: n, F: f, Proposal: lattice.FromStrings(id, "v"), Keychain: kc})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		correct = append(correct, m)
		all = append(all, m)
	}
	all = append(all, byz...)
	return correct, all
}

func sbsVerify(t *testing.T, ms []*Machine, f int, byzValues []lattice.Set, wantLive bool) {
	t.Helper()
	run := &check.LARun{
		Proposals: map[ident.ProcessID]lattice.Set{},
		Decisions: map[ident.ProcessID]lattice.Set{},
		ByzValues: byzValues,
		F:         f,
	}
	for _, m := range ms {
		run.Proposals[m.ID()] = m.cfg.Proposal
		if d, ok := m.Decision(); ok {
			run.Decisions[m.ID()] = d
		}
	}
	var v []string
	if wantLive {
		v = run.All()
	} else {
		v = run.SafetyOnly()
	}
	if len(v) != 0 {
		t.Fatalf("LA violations: %s", strings.Join(v, "; "))
	}
}

func sbsIDs(ms []*Machine) []ident.ProcessID {
	ids := make([]ident.ProcessID, len(ms))
	for i, m := range ms {
		ids[i] = m.ID()
	}
	return ids
}

func TestSbSAllCorrectDecideWithinBound(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {4, 0}} {
		kc := sig.NewSim(tc.n, 1)
		correct, all := sbsCluster(t, tc.n, tc.f, kc, nil)
		res := sim.New(sim.Config{Machines: all, MaxTime: 10_000}).Run()
		maxT, ok := res.MaxDecisionTime(sbsIDs(correct))
		if !ok {
			t.Fatalf("n=%d f=%d: not all decided", tc.n, tc.f)
		}
		if bound := uint64(5 + 4*tc.f); maxT > bound {
			t.Fatalf("n=%d f=%d: decided at %d > bound %d (Theorem 8)", tc.n, tc.f, maxT, bound)
		}
		sbsVerify(t, correct, tc.f, nil, true)
	}
}

type sbsMute struct {
	proto.Recorder
	id ident.ProcessID
}

func (m *sbsMute) ID() ident.ProcessID                            { return m.id }
func (m *sbsMute) Start() []proto.Output                          { return nil }
func (m *sbsMute) Handle(ident.ProcessID, msg.Msg) []proto.Output { return nil }

func TestSbSWaitFreeWithMutes(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		kc := sig.NewSim(tc.n, 1)
		var byz []proto.Machine
		for i := 0; i < tc.f; i++ {
			byz = append(byz, &sbsMute{id: ident.ProcessID(tc.n - 1 - i)})
		}
		correct, all := sbsCluster(t, tc.n, tc.f, kc, byz)
		res := sim.New(sim.Config{Machines: all, MaxTime: 10_000}).Run()
		maxT, ok := res.MaxDecisionTime(sbsIDs(correct))
		if !ok {
			t.Fatalf("n=%d f=%d: blocked by mutes", tc.n, tc.f)
		}
		if bound := uint64(5 + 4*tc.f); maxT > bound {
			t.Fatalf("n=%d f=%d: %d > %d", tc.n, tc.f, maxT, bound)
		}
		sbsVerify(t, correct, tc.f, nil, true)
	}
}

// equivocator signs two different values and splits them across the
// cluster — the attack Lemma 13 defends against.
type equivocator struct {
	proto.Recorder
	id     ident.ProcessID
	n      int
	crypto *Crypto
}

func (e *equivocator) ID() ident.ProcessID { return e.id }
func (e *equivocator) Start() []proto.Output {
	va := e.crypto.SignValue(0, lattice.FromStrings(e.id, "evil-A"))
	vb := e.crypto.SignValue(0, lattice.FromStrings(e.id, "evil-B"))
	var outs []proto.Output
	for i := 0; i < e.n; i++ {
		sv := va
		if i >= e.n/2 {
			sv = vb
		}
		outs = append(outs, proto.Send(ident.ProcessID(i), msg.InitVal{SV: sv}))
	}
	return outs
}
func (e *equivocator) Handle(ident.ProcessID, msg.Msg) []proto.Output { return nil }

func TestSbSEquivocationAtMostOneSafeValue(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n, f := 4, 1
		kc := sig.NewSim(n, 1)
		byz := []proto.Machine{&equivocator{id: 3, n: n, crypto: NewCrypto(kc, 3, (n+f)/2+1)}}
		correct, all := sbsCluster(t, n, f, kc, byz)
		res := sim.New(sim.Config{Machines: all, Delay: sim.Uniform{Lo: 1, Hi: 4}, Seed: seed, MaxTime: 10_000}).Run()
		if _, ok := res.MaxDecisionTime(sbsIDs(correct)); !ok {
			t.Fatalf("seed %d: no decision", seed)
		}
		// Lemma 13: at most one of the equivocated values may appear,
		// and decisions must be comparable.
		sawA, sawB := false, false
		for _, m := range correct {
			d, _ := m.Decision()
			if d.Contains(lattice.Item{Author: 3, Body: "evil-A"}) {
				sawA = true
			}
			if d.Contains(lattice.Item{Author: 3, Body: "evil-B"}) {
				sawB = true
			}
		}
		if sawA && sawB {
			t.Fatalf("seed %d: both equivocated values decided", seed)
		}
		sbsVerify(t, correct, f, []lattice.Set{
			lattice.FromStrings(3, "evil-A"), // at most one appears; the
			// checker allows any subset of listed byz values
		}, true)
		if sawB {
			// re-run the checker with the other attribution
			sbsVerify(t, correct, f, []lattice.Set{lattice.FromStrings(3, "evil-B")}, true)
		}
	}
}

// forger injects values with invalid signatures claiming to be p0.
type forger struct {
	proto.Recorder
	id ident.ProcessID
}

func (fg *forger) ID() ident.ProcessID { return fg.id }
func (fg *forger) Start() []proto.Output {
	forged := msg.SignedValue{Author: 0, Round: 0, Value: lattice.FromStrings(0, "forged"), Sig: []byte("nope")}
	return []proto.Output{proto.Bcast(msg.InitVal{SV: forged})}
}
func (fg *forger) Handle(ident.ProcessID, msg.Msg) []proto.Output { return nil }

func TestSbSForgedValuesRejected(t *testing.T) {
	n, f := 4, 1
	kc := sig.NewSim(n, 1)
	byz := []proto.Machine{&forger{id: 3}}
	correct, all := sbsCluster(t, n, f, kc, byz)
	sim.New(sim.Config{Machines: all, MaxTime: 10_000}).Run()
	for _, m := range correct {
		d, ok := m.Decision()
		if !ok {
			t.Fatalf("%v did not decide", m.ID())
		}
		if d.Contains(lattice.Item{Author: 0, Body: "forged"}) {
			t.Fatalf("forged value decided by %v", m.ID())
		}
	}
	sbsVerify(t, correct, f, nil, true)
}

func TestSbSRefinementsBounded(t *testing.T) {
	// Lemma 16: at most 2f refinements per correct proposer.
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		kc := sig.NewSim(tc.n, 1)
		correct, all := sbsCluster(t, tc.n, tc.f, kc, nil)
		offsets := map[ident.ProcessID]uint64{}
		for i := 0; i < tc.n; i++ {
			offsets[ident.ProcessID(i)] = uint64(3 * i)
		}
		res := sim.New(sim.Config{
			Machines: all,
			Delay:    sim.SenderStagger{Base: sim.Fixed(1), Offset: offsets},
			MaxTime:  100_000,
		}).Run()
		for _, m := range correct {
			if r := res.Refinements(m.ID()); r > 2*tc.f {
				t.Fatalf("n=%d f=%d: %v refined %d > 2f", tc.n, tc.f, m.ID(), r)
			}
		}
		if _, ok := res.MaxDecisionTime(sbsIDs(correct)); !ok {
			t.Fatal("no decision under stagger")
		}
		sbsVerify(t, correct, tc.f, nil, true)
	}
}

func TestSbSMessageComplexityLinear(t *testing.T) {
	// §8.1: O(n) messages per proposer when f = O(1). Doubling n at
	// fixed f must roughly double (not quadruple) the per-proposer count.
	counts := map[int]int{}
	for _, n := range []int{8, 16, 32} {
		f := 1
		kc := sig.NewSim(n, 1)
		correct, all := sbsCluster(t, n, f, kc, nil)
		res := sim.New(sim.Config{Machines: all, MaxTime: 10_000}).Run()
		if _, ok := res.MaxDecisionTime(sbsIDs(correct)); !ok {
			t.Fatalf("n=%d: no decision", n)
		}
		counts[n] = res.Metrics.MaxSentByProc(sbsIDs(correct))
		if counts[n] > 20*n {
			t.Fatalf("n=%d: per-proposer messages %d not linear", n, counts[n])
		}
	}
	ratio1 := float64(counts[16]) / float64(counts[8])
	ratio2 := float64(counts[32]) / float64(counts[16])
	if ratio1 > 3 || ratio2 > 3 {
		t.Fatalf("growth not linear: %v", counts)
	}
}

func TestSbSDetectsWrongAcks(t *testing.T) {
	// A machine counting an ack whose Accepted set mismatches marks the
	// sender byzantine.
	kc := sig.NewSim(4, 1)
	m := NewUnchecked(Config{Self: 0, N: 4, F: 1, Proposal: lattice.FromStrings(0, "v"), Keychain: kc})
	m.state = Proposing
	m.ts = 1
	m.Handle(2, msg.AckS{Round: 0, Accepted: lattice.FromStrings(9, "junk"), TS: 1})
	if got := m.DetectedByz(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DetectedByz = %v", got)
	}
	// Later acks from the flagged process are ignored.
	m.Handle(2, msg.AckS{Round: 0, Accepted: m.Proposed(), TS: 1})
	if m.ackers.Len() != 0 {
		t.Fatal("flagged process must not be counted")
	}
}

func TestSbSStaleTimestampsIgnored(t *testing.T) {
	kc := sig.NewSim(4, 1)
	m := NewUnchecked(Config{Self: 0, N: 4, F: 1, Proposal: lattice.FromStrings(0, "v"), Keychain: kc})
	m.state = Proposing
	m.ts = 5
	m.Handle(1, msg.AckS{Round: 0, Accepted: m.Proposed(), TS: 4})
	if m.ackers.Len() != 0 || len(m.DetectedByz()) != 0 {
		t.Fatal("stale ack must be silently ignored")
	}
	m.Handle(1, msg.NackS{Round: 0, TS: 4})
	if len(m.DetectedByz()) != 0 {
		t.Fatal("stale nack must be silently ignored")
	}
}

func TestSbSNewValidation(t *testing.T) {
	kc := sig.NewSim(4, 1)
	if _, err := New(Config{Self: 0, N: 3, F: 1, Keychain: kc}); err == nil {
		t.Fatal("must reject n<3f+1")
	}
	if _, err := New(Config{Self: 0, N: 4, F: 1}); err == nil {
		t.Fatal("must reject missing keychain")
	}
	if Init.String() != "init" || Safetying.String() != "safetying" ||
		Proposing.String() != "proposing" || Decided.String() != "decided" {
		t.Fatal("state strings")
	}
}

func TestSbSWithEd25519(t *testing.T) {
	// End-to-end with real signatures.
	n, f := 4, 1
	kc := sig.NewEd25519(n, 2)
	correct, all := sbsCluster(t, n, f, kc, nil)
	res := sim.New(sim.Config{Machines: all, MaxTime: 10_000}).Run()
	if _, ok := res.MaxDecisionTime(sbsIDs(correct)); !ok {
		t.Fatal("ed25519 run did not decide")
	}
	sbsVerify(t, correct, f, nil, true)
}
