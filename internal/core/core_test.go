package core

import (
	"errors"
	"testing"
	"testing/quick"

	identpkg "bgla/internal/ident"
	"bgla/internal/lattice"
)

func TestMaxFaulty(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 3: 0, 4: 1, 6: 1, 7: 2, 10: 3, 100: 33}
	for n, want := range cases {
		if got := MaxFaulty(n); got != want {
			t.Errorf("MaxFaulty(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAckQuorumIntersection(t *testing.T) {
	// Property: for every legal (n, f), two ack quorums intersect in at
	// least f+1 processes, i.e. at least one correct process, and n-f
	// correct processes can always form a quorum.
	for n := 1; n <= 60; n++ {
		for f := 0; 3*f+1 <= n; f++ {
			q := AckQuorum(n, f)
			if inter := 2*q - n; inter < f+1 {
				t.Fatalf("n=%d f=%d: quorums intersect in %d < f+1", n, f, inter)
			}
			if n-f < q {
				t.Fatalf("n=%d f=%d: correct processes (%d) cannot form quorum (%d)", n, f, n-f, q)
			}
			if cf := CorrectAckFloor(n, f); q-f > cf {
				t.Fatalf("n=%d f=%d: CorrectAckFloor too small", n, f)
			}
		}
	}
}

func TestValidateConfig(t *testing.T) {
	if err := ValidateConfig(4, 1); err != nil {
		t.Fatalf("4/1 must be valid: %v", err)
	}
	if err := ValidateConfig(3, 1); !errors.Is(err, ErrTooFewProcesses) {
		t.Fatalf("3/1 must violate the bound, got %v", err)
	}
	if err := ValidateConfig(0, 0); err == nil {
		t.Fatal("n=0 must be invalid")
	}
	if err := ValidateConfig(4, -1); err == nil {
		t.Fatal("negative f must be invalid")
	}
	if err := ValidateConfig(1, 0); err != nil {
		t.Fatalf("1/0 must be valid: %v", err)
	}
}

func TestReadQuorum(t *testing.T) {
	if ReadQuorum(2) != 3 {
		t.Fatal("ReadQuorum(2) != 3")
	}
}

func TestSVSBasics(t *testing.T) {
	s := NewSVS()
	v0 := lattice.FromStrings(0, "a")
	v1 := lattice.FromStrings(1, "b")
	if !s.Add(0, v0) || !s.Add(1, v1) {
		t.Fatal("fresh adds must succeed")
	}
	if s.Add(0, lattice.FromStrings(0, "other")) {
		t.Fatal("duplicate discloser must be rejected")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !s.Safe(v0) || !s.Safe(v0.Union(v1)) {
		t.Fatal("disclosed elements must be safe")
	}
	if s.Safe(lattice.FromStrings(2, "x")) {
		t.Fatal("undisclosed element must be unsafe")
	}
	if got, ok := s.Value(1); !ok || !got.Equal(v1) {
		t.Fatal("Value lookup failed")
	}
	if _, ok := s.Value(9); ok {
		t.Fatal("Value for unknown process must miss")
	}
	if !s.Safe(lattice.Empty()) {
		t.Fatal("⊥ is always safe")
	}
}

func TestRoundSVSCumulativeSafety(t *testing.T) {
	rs := NewRoundSVS()
	v0 := lattice.FromStrings(0, "r0")
	v1 := lattice.FromStrings(1, "r1")
	rs.Add(0, 0, v0)
	rs.Add(1, 1, v1)
	if !rs.SafeAt(0, v0) {
		t.Fatal("round-0 value safe at round 0")
	}
	if rs.SafeAt(0, v1) {
		t.Fatal("round-1 value must not be safe at round 0")
	}
	if !rs.SafeAt(1, v0.Union(v1)) {
		t.Fatal("cumulative union must be safe at round 1")
	}
	if !rs.SafeAny(v0.Union(v1)) {
		t.Fatal("SafeAny must accept the cumulative union")
	}
	if rs.SafeAny(lattice.FromStrings(9, "never")) {
		t.Fatal("never-disclosed element must be unsafe")
	}
	if rs.Count(0) != 1 || rs.Count(1) != 1 || rs.Count(7) != 0 {
		t.Fatal("per-round counts wrong")
	}
	if rs.MaxRound() != 1 {
		t.Fatalf("MaxRound = %d", rs.MaxRound())
	}
}

func TestRoundSVSBackfillUpdatesLaterRounds(t *testing.T) {
	// A late disclosure for an early round must become safe for all
	// later rounds too (cumulative property under out-of-order arrival).
	rs := NewRoundSVS()
	late := lattice.FromStrings(2, "late")
	rs.Add(3, 0, lattice.FromStrings(0, "x"))
	if rs.SafeAt(3, late) {
		t.Fatal("not yet disclosed")
	}
	rs.Add(1, 2, late)
	if !rs.SafeAt(3, late) || !rs.SafeAt(1, late) {
		t.Fatal("backfilled disclosure must be safe from its round onward")
	}
	if rs.SafeAt(0, late) {
		t.Fatal("backfilled disclosure must stay unsafe before its round")
	}
}

func TestRoundSVSDuplicatePerRound(t *testing.T) {
	rs := NewRoundSVS()
	if !rs.Add(0, 0, lattice.FromStrings(0, "a")) {
		t.Fatal("first add")
	}
	if rs.Add(0, 0, lattice.FromStrings(0, "b")) {
		t.Fatal("same discloser same round must be rejected")
	}
	if !rs.Add(1, 0, lattice.FromStrings(0, "b")) {
		t.Fatal("same discloser next round must succeed")
	}
	if rs.Add(-1, 0, lattice.Empty()) {
		t.Fatal("negative round rejected")
	}
}

func TestRoundSVSEmptyTracker(t *testing.T) {
	rs := NewRoundSVS()
	if rs.SafeAny(lattice.FromStrings(0, "x")) {
		t.Fatal("empty tracker: nothing non-empty is safe")
	}
	if !rs.SafeAny(lattice.Empty()) {
		t.Fatal("empty element is vacuously safe")
	}
	if !rs.UnionAt(5).IsEmpty() {
		t.Fatal("UnionAt on empty tracker")
	}
	if rs.MaxRound() != -1 {
		t.Fatal("MaxRound on empty tracker")
	}
}

func TestAckTallyQuorums(t *testing.T) {
	tal := NewAckTally()
	v := lattice.FromStrings(0, "v")
	if got := tal.Add(1, v, 0, 2, 0); got != 1 {
		t.Fatalf("first add count = %d", got)
	}
	if got := tal.Add(1, v, 0, 2, 0); got != 1 {
		t.Fatalf("duplicate sender must not double count: %d", got)
	}
	tal.Add(2, v, 0, 2, 0)
	tal.Add(3, v, 0, 2, 0)
	if tal.Count(v, 0, 2, 0) != 3 {
		t.Fatal("Count mismatch")
	}
	// Different tuple dimensions are independent.
	if tal.Count(v, 0, 3, 0) != 0 || tal.Count(v, 1, 2, 0) != 0 || tal.Count(v, 0, 2, 1) != 0 {
		t.Fatal("tuple dimensions leaked")
	}
	entries := tal.AtQuorum(0, 3)
	if len(entries) != 1 || entries[0].Count != 3 || !entries[0].Value.Equal(v) {
		t.Fatalf("AtQuorum = %+v", entries)
	}
	if len(tal.AtQuorum(0, 4)) != 0 {
		t.Fatal("quorum 4 not reached")
	}
	if !tal.RoundReached(0, 3) || tal.RoundReached(1, 1) {
		t.Fatal("RoundReached wrong")
	}
	if !tal.AnyQuorumValue(v, 3) {
		t.Fatal("AnyQuorumValue must find v")
	}
	if tal.AnyQuorumValue(lattice.FromStrings(9, "w"), 1) {
		t.Fatal("AnyQuorumValue must miss unknown values")
	}
}

func TestAckTallyDeterministicOrder(t *testing.T) {
	tal := NewAckTally()
	for i := 0; i < 5; i++ {
		v := lattice.FromStrings(0, string(rune('a'+i)))
		tal.Add(1, v, 0, 0, 0)
	}
	a := tal.AtQuorum(0, 1)
	b := tal.AtQuorum(0, 1)
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("missing entries")
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("AtQuorum order must be deterministic")
		}
	}
}

func TestQuickSVSUnionMatchesFold(t *testing.T) {
	f := func(raw []byte) bool {
		s := NewSVS()
		want := lattice.Empty()
		for i, b := range raw {
			v := lattice.FromStrings(0, string('a'+rune(b%7)))
			if s.Add(identpkg.ProcessID(i), v) {
				want = want.Union(v)
			}
		}
		return s.Union().Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
