// Package shard partitions the replicated state machine into S
// independent BGLA lattice instances multiplexed over one transport.
//
// A single lattice serializes every command through one growing
// Accepted_set, so per-operation protocol cost (set folds, RBC identity
// checks, digest work) grows with the whole system's history. Key
// partitioning removes that coupling: commands addressing different
// data-item keys commute *and* never need to meet in the same lattice,
// so each shard runs the unmodified §7 construction over 1/S of the
// history. Per-key semantics are preserved exactly — all commands for
// one key colocate (crdt.RoutingKey), so the per-key view still folds a
// single totally-ordered decision chain — while keyless commands
// (counter increments) are hash-partitioned freely because their views
// are order-free sums.
//
// Two pieces live here:
//
//   - the Router (Of / Route): stable FNV-1a key placement;
//   - the Demux: a proto.Machine hosting one process's S shard
//     replicas, unwrapping the msg.ShardMsg envelope and running each
//     shard on its own goroutine, so one transport identity carries S
//     concurrent lattice instances (chanet and tcpnet both drive it
//     unchanged).
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"bgla/internal/crdt"
	"bgla/internal/ident"
	"bgla/internal/msg"
	"bgla/internal/proto"
)

// Of places a data-item key on one of shards lattices (FNV-1a).
// Placement must be identical on every client for per-key colocation,
// so it depends only on the key bytes and the shard count.
func Of(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// Route places a command body: keyed commands go to their key's shard,
// keyless ones are spread by the caller's sequence number (every client
// already assigns one for command uniqueness, so it is free entropy).
func Route(body string, seq uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	if key, ok := crdt.RoutingKey(body); ok {
		return Of(key, shards)
	}
	return int(seq % uint64(shards))
}

// Sender tags one shard's client traffic before it enters a shared
// transport; send is chanet injection or a tcpnet node's Send. The
// returned value satisfies the batching pipeline's Sender interface.
type Sender struct {
	shard int
	send  func(to ident.ProcessID, m msg.Msg)
}

// NewSender builds a tagging sender for one shard.
func NewSender(shard int, send func(to ident.ProcessID, m msg.Msg)) Sender {
	return Sender{shard: shard, send: send}
}

// Send wraps m in the shard envelope and transmits it.
func (s Sender) Send(to ident.ProcessID, m msg.Msg) {
	s.send(to, msg.ShardMsg{Shard: s.shard, Inner: m})
}

// Gateway is the client-side counterpart of the Demux: a protocol
// machine that unwraps shard-tagged replica notifications and hands
// each to its shard's deliver hook (a batching pipeline's Deliver).
// Untagged or out-of-range traffic is dropped — the same envelope
// validation on both ends of the wire.
type Gateway struct {
	proto.Recorder
	self    ident.ProcessID
	shards  int
	deliver func(shard int, from ident.ProcessID, m msg.Msg)
}

// NewGateway builds a gateway; the deliver hook may be installed later
// (SetDeliver) but must be in place before the transport starts.
func NewGateway(self ident.ProcessID, shards int) *Gateway {
	return &Gateway{self: self, shards: shards}
}

// SetDeliver installs the per-shard delivery hook.
func (g *Gateway) SetDeliver(deliver func(shard int, from ident.ProcessID, m msg.Msg)) {
	g.deliver = deliver
}

// ID implements proto.Machine.
func (g *Gateway) ID() ident.ProcessID { return g.self }

// Start implements proto.Machine.
func (g *Gateway) Start() []proto.Output { return nil }

// Handle implements proto.Machine.
func (g *Gateway) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	if sm, ok := m.(msg.ShardMsg); ok && sm.Shard >= 0 && sm.Shard < g.shards && sm.Inner != nil {
		g.deliver(sm.Shard, from, sm.Inner)
	}
	return nil
}

// DemuxConfig configures one process's shard demultiplexer.
type DemuxConfig struct {
	// Self is the process identity shared by all hosted shard replicas.
	Self ident.ProcessID
	// Subs[s] is the protocol machine of shard s; a nil entry runs that
	// shard as a mute Byzantine replica (per-shard fault injection).
	Subs []proto.Machine
	// All lists every transport destination (replica processes and
	// client gateways) for broadcast expansion: sub-machine broadcasts
	// become one tagged point-to-point send per destination.
	All []ident.ProcessID
	// Send transmits a tagged message on the shared transport
	// (chanet.Net.Inject or tcpnet.Node.Send). It must be safe for
	// concurrent use; the Demux calls it from S goroutines.
	Send func(to ident.ProcessID, m msg.Msg)
	// Inline drives every sub-machine synchronously on the caller's
	// goroutine instead of on per-shard workers. Deterministic
	// transports (internal/faultnet) require it: worker goroutines
	// would reintroduce scheduling nondeterminism. Self-addressed
	// outputs are processed through a local FIFO before Handle
	// returns, like a worker's loop-back.
	Inline bool
}

// Demux is the per-process shard multiplexer: a proto.Machine whose
// Handle unwraps msg.ShardMsg and forwards the inner message to the
// addressed shard's worker goroutine. Outputs of shard s are wrapped
// back into ShardMsg{Shard: s} and pushed through cfg.Send, so on the
// wire every lattice instance keeps its own message streams while the
// transport sees a single machine per process.
//
// Workers give shards *horizontal* concurrency inside one process:
// chanet and tcpnet drive each machine from a single goroutine, so
// running the S sub-machines inline would serialize every shard of a
// process behind one inbox. The demux inbox only routes (cheap), and
// each shard's protocol work proceeds in parallel with its siblings'.
type Demux struct {
	cfg     DemuxConfig
	boxes   []*workbox
	wg      sync.WaitGroup
	started bool

	evMu   sync.Mutex
	events []proto.Event
}

// workbox is one shard worker's unbounded mailbox.
type workbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []inbound
	closed bool
}

type inbound struct {
	from ident.ProcessID
	m    msg.Msg
}

func newWorkbox() *workbox {
	b := &workbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *workbox) put(e inbound) {
	b.mu.Lock()
	if !b.closed {
		b.queue = append(b.queue, e)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

func (b *workbox) take() (inbound, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return inbound{}, false
	}
	e := b.queue[0]
	b.queue = b.queue[1:]
	return e, true
}

func (b *workbox) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// NewDemux builds a demux; Send may be set later (SetSend) but must be
// in place before the transport calls Start.
func NewDemux(cfg DemuxConfig) (*Demux, error) {
	if len(cfg.Subs) == 0 {
		return nil, errors.New("shard: no sub-machines")
	}
	for s, sub := range cfg.Subs {
		if sub != nil && sub.ID() != cfg.Self {
			return nil, fmt.Errorf("shard: sub-machine %d has identity %v, want %v", s, sub.ID(), cfg.Self)
		}
	}
	d := &Demux{cfg: cfg}
	for range cfg.Subs {
		d.boxes = append(d.boxes, newWorkbox())
	}
	return d, nil
}

// SetSend installs the transport send hook (needed when the transport
// object itself is constructed around the machine, e.g. tcpnet.Node).
func (d *Demux) SetSend(send func(to ident.ProcessID, m msg.Msg)) { d.cfg.Send = send }

// Shards returns the hosted shard count.
func (d *Demux) Shards() int { return len(d.cfg.Subs) }

// ID implements proto.Machine.
func (d *Demux) ID() ident.ProcessID { return d.cfg.Self }

// Start implements proto.Machine: it launches one worker per shard.
// Sub-machine Start outputs are emitted through Send like any other
// output (never returned), so transports that ignore returned outputs
// after the first delivery behave identically.
func (d *Demux) Start() []proto.Output {
	if d.started {
		return nil
	}
	d.started = true
	if d.cfg.Inline {
		for s, sub := range d.cfg.Subs {
			if sub == nil {
				continue
			}
			d.inlineRun(s, sub, sub.Start())
		}
		return nil
	}
	for s := range d.cfg.Subs {
		d.wg.Add(1)
		go d.work(s)
	}
	return nil
}

// Handle implements proto.Machine: route-only, never blocks (inline
// mode runs the addressed sub-machine synchronously instead).
func (d *Demux) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	sm, ok := m.(msg.ShardMsg)
	if !ok || sm.Shard < 0 || sm.Shard >= len(d.cfg.Subs) || sm.Inner == nil {
		// Untagged or out-of-range traffic (hostile or misconfigured
		// peer): no shard owns it, drop it on the floor.
		return nil
	}
	if d.cfg.Inline {
		sub := d.cfg.Subs[sm.Shard]
		if sub == nil {
			return nil // mute Byzantine shard
		}
		d.inlineRun(sm.Shard, sub, sub.Handle(from, sm.Inner))
		return nil
	}
	d.boxes[sm.Shard].put(inbound{from: from, m: sm.Inner})
	return nil
}

// inlineRun sends one batch of sub-machine outputs, then drains the
// self-addressed loop-backs to quiescence (bounded: self-messages are
// buffered-work drains, not loops).
func (d *Demux) inlineRun(s int, sub proto.Machine, outs []proto.Output) {
	d.drain(sub)
	var pending []inbound
	self := func(e inbound) { pending = append(pending, e) }
	d.route(s, outs, self)
	for len(pending) > 0 {
		e := pending[0]
		pending = pending[1:]
		d.route(s, sub.Handle(e.from, e.m), self)
		d.drain(sub)
	}
}

// TakeEvents implements proto.EventSource, aggregating the hosted
// machines' events; workers append concurrently, drivers drain.
func (d *Demux) TakeEvents() []proto.Event {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	out := d.events
	d.events = nil
	return out
}

// Stop shuts the workers down and waits for them. Call after the
// transport has stopped delivering (late Handle calls land in closed
// boxes and are dropped).
func (d *Demux) Stop() {
	for _, b := range d.boxes {
		b.close()
	}
	d.wg.Wait()
}

// work drives one shard's sub-machine; the goroutine owns it
// exclusively, satisfying the proto.Machine single-driver contract.
func (d *Demux) work(s int) {
	defer d.wg.Done()
	sub := d.cfg.Subs[s]
	if sub == nil {
		// Mute Byzantine shard: swallow traffic, say nothing.
		for {
			if _, ok := d.boxes[s].take(); !ok {
				return
			}
		}
	}
	d.emit(s, sub.Start())
	d.drain(sub)
	for {
		e, ok := d.boxes[s].take()
		if !ok {
			return
		}
		d.emit(s, sub.Handle(e.from, e.m))
		d.drain(sub)
	}
}

// emit wraps a sub-machine's outputs in the shard envelope and sends
// them, expanding broadcasts over the destination list. Self-addressed
// traffic loops back through the local workbox directly: it needs no
// transport hop and chanet's Inject would attribute it correctly but
// deliver it through the demux inbox, adding latency for nothing.
func (d *Demux) emit(s int, outs []proto.Output) {
	d.route(s, outs, func(e inbound) { d.boxes[s].put(e) })
}

// route is the single output-routing path shared by worker and inline
// modes: shard wrapping, broadcast expansion over All, and the
// self-delivery short-circuit (a workbox put in worker mode, the
// caller's local FIFO inline) — so the two modes cannot drift apart.
func (d *Demux) route(s int, outs []proto.Output, self func(inbound)) {
	for _, o := range outs {
		if o.Msg == nil {
			continue
		}
		wrapped := msg.ShardMsg{Shard: s, Inner: o.Msg}
		if o.To == proto.Broadcast {
			for _, to := range d.cfg.All {
				if to == d.cfg.Self {
					self(inbound{from: d.cfg.Self, m: o.Msg})
					continue
				}
				d.cfg.Send(to, wrapped)
			}
			continue
		}
		if o.To == d.cfg.Self {
			self(inbound{from: d.cfg.Self, m: o.Msg})
			continue
		}
		d.cfg.Send(o.To, wrapped)
	}
}

func (d *Demux) drain(sub proto.Machine) {
	evs := proto.DrainEvents(sub)
	if len(evs) == 0 {
		return
	}
	d.evMu.Lock()
	d.events = append(d.events, evs...)
	d.evMu.Unlock()
}
