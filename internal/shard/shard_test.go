package shard

import (
	"sync"
	"testing"
	"time"

	"bgla/internal/chanet"
	"bgla/internal/crdt"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
)

func TestRouteColocatesKeys(t *testing.T) {
	const shards = 8
	keys := []string{"", "a", "user|42", `esc\aped`, "nul\x00key", "long-key-with-more-bytes"}
	for _, k := range keys {
		want := Of(k, shards)
		if want < 0 || want >= shards {
			t.Fatalf("Of(%q) = %d out of range", k, want)
		}
		// Every command addressing k lands on k's shard, whatever the
		// client seq, stamp or value.
		for seq := uint64(0); seq < 5; seq++ {
			for _, body := range []string{
				crdt.AddCmd(k), crdt.RemCmd(k),
				crdt.PutCmd(k, seq, "v"), crdt.PutCmd(k, 99, string(rune('a'+seq))),
			} {
				if got := Route(body, seq, shards); got != want {
					t.Fatalf("Route(%q, seq=%d) = %d, want %d", body, seq, got, want)
				}
			}
		}
	}
}

func TestRouteSpreadsKeylessCommands(t *testing.T) {
	const shards = 4
	seen := map[int]int{}
	for seq := uint64(0); seq < 64; seq++ {
		seen[Route(crdt.IncCmd(1), seq, shards)]++
	}
	for s := 0; s < shards; s++ {
		if seen[s] == 0 {
			t.Fatalf("shard %d got no keyless commands: %v", s, seen)
		}
	}
	if got := Route(crdt.IncCmd(1), 9, 1); got != 0 {
		t.Fatalf("single shard must absorb everything, got %d", got)
	}
}

// echoMachine is a minimal shard instance: it records what it received
// and answers every NewValue with a broadcast Decide tagged (via Round)
// with its instance number, so tests can see exactly which lattice
// instance spoke.
type echoMachine struct {
	proto.Recorder
	self     ident.ProcessID
	instance int

	mu   sync.Mutex
	rcvd []msg.Msg
}

func (e *echoMachine) ID() ident.ProcessID   { return e.self }
func (e *echoMachine) Start() []proto.Output { return nil }
func (e *echoMachine) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	e.mu.Lock()
	e.rcvd = append(e.rcvd, m)
	e.mu.Unlock()
	if nv, ok := m.(msg.NewValue); ok {
		return []proto.Output{proto.Bcast(msg.Decide{
			Value: lattice.FromItems(nv.Cmd),
			Round: e.instance,
		})}
	}
	return nil
}

func (e *echoMachine) received() []msg.Msg {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]msg.Msg(nil), e.rcvd...)
}

// collector is the client-side machine recording tagged deliveries.
type collector struct {
	proto.Recorder
	self ident.ProcessID

	mu   sync.Mutex
	got  []msg.ShardMsg
	from []ident.ProcessID
}

func (c *collector) ID() ident.ProcessID   { return c.self }
func (c *collector) Start() []proto.Output { return nil }
func (c *collector) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	if sm, ok := m.(msg.ShardMsg); ok {
		c.mu.Lock()
		c.got = append(c.got, sm)
		c.from = append(c.from, from)
		c.mu.Unlock()
	}
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

// TestDemuxIsolatesShardsOverSharedTransport runs two demuxed processes
// and a client on one chanet: a command tagged for shard 1 must reach
// only instance 1 on every process, replies must come back tagged, and
// shard 0 must stay silent.
func TestDemuxIsolatesShardsOverSharedTransport(t *testing.T) {
	const clientID ident.ProcessID = 100
	all := []ident.ProcessID{0, 1, clientID}
	mk := func(self ident.ProcessID) (*Demux, []*echoMachine) {
		subs := []*echoMachine{
			{self: self, instance: int(self)*10 + 0},
			{self: self, instance: int(self)*10 + 1},
		}
		d, err := NewDemux(DemuxConfig{
			Self: self,
			Subs: []proto.Machine{subs[0], subs[1]},
			All:  all,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d, subs
	}
	d0, subs0 := mk(0)
	d1, subs1 := mk(1)
	cl := &collector{self: clientID}
	net := chanet.New([]proto.Machine{d0, d1, cl}, chanet.Options{})
	d0.SetSend(func(to ident.ProcessID, m msg.Msg) { net.Inject(0, to, m) })
	d1.SetSend(func(to ident.ProcessID, m msg.Msg) { net.Inject(1, to, m) })
	net.Start()

	cmd := lattice.Item{Author: clientID, Body: "x"}
	net.Inject(clientID, 0, msg.ShardMsg{Shard: 1, Inner: msg.NewValue{Cmd: cmd}})
	// Hostile/garbage tags must be dropped without disturbing anything.
	net.Inject(clientID, 0, msg.ShardMsg{Shard: 99, Inner: msg.NewValue{Cmd: cmd}})
	net.Inject(clientID, 0, msg.ShardMsg{Shard: -1, Inner: msg.NewValue{Cmd: cmd}})
	net.Inject(clientID, 0, msg.NewValue{Cmd: cmd}) // untagged

	deadline := time.Now().Add(5 * time.Second)
	for cl.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// p0's broadcast reply also fans to p1's shard 1; give it a moment.
	time.Sleep(20 * time.Millisecond)
	d0.Stop()
	d1.Stop()
	net.Stop()

	if got := cl.count(); got != 1 {
		t.Fatalf("collector saw %d tagged messages, want 1", got)
	}
	cl.mu.Lock()
	reply := cl.got[0]
	cl.mu.Unlock()
	if reply.Shard != 1 {
		t.Fatalf("reply tagged shard %d, want 1", reply.Shard)
	}
	dec, ok := reply.Inner.(msg.Decide)
	if !ok || dec.Round != 1 { // p0's shard-1 instance
		t.Fatalf("reply = %#v, want Decide from instance 01", reply.Inner)
	}

	if got := subs0[0].received(); len(got) != 0 {
		t.Fatalf("p0 shard 0 leaked %d messages: %v", len(got), got)
	}
	if got := subs0[1].received(); len(got) != 2 { // NewValue + its own broadcast Decide loopback
		t.Fatalf("p0 shard 1 saw %d messages, want 2: %v", len(got), got)
	}
	if got := subs1[0].received(); len(got) != 0 {
		t.Fatalf("p1 shard 0 leaked %d messages: %v", len(got), got)
	}
	if got := subs1[1].received(); len(got) != 1 { // p0's broadcast Decide
		t.Fatalf("p1 shard 1 saw %d messages, want 1: %v", len(got), got)
	}
	if _, ok := subs1[1].received()[0].(msg.Decide); !ok {
		t.Fatalf("p1 shard 1 got %#v, want the Decide broadcast", subs1[1].received()[0])
	}
}

// TestDemuxMuteShard: a nil sub swallows its shard's traffic while
// sibling shards keep answering — per-shard Byzantine fault injection.
func TestDemuxMuteShard(t *testing.T) {
	const clientID ident.ProcessID = 100
	live := &echoMachine{self: 0, instance: 1}
	d, err := NewDemux(DemuxConfig{
		Self: 0,
		Subs: []proto.Machine{nil, live},
		All:  []ident.ProcessID{0, clientID},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := &collector{self: clientID}
	net := chanet.New([]proto.Machine{d, cl}, chanet.Options{})
	d.SetSend(func(to ident.ProcessID, m msg.Msg) { net.Inject(0, to, m) })
	net.Start()

	cmd := lattice.Item{Author: clientID, Body: "x"}
	net.Inject(clientID, 0, msg.ShardMsg{Shard: 0, Inner: msg.NewValue{Cmd: cmd}}) // muted
	net.Inject(clientID, 0, msg.ShardMsg{Shard: 1, Inner: msg.NewValue{Cmd: cmd}})

	deadline := time.Now().Add(5 * time.Second)
	for cl.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	net.Stop()

	if got := cl.count(); got != 1 {
		t.Fatalf("collector saw %d replies, want 1 (mute shard must stay silent)", got)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.got[0].Shard != 1 {
		t.Fatalf("reply from shard %d, want 1", cl.got[0].Shard)
	}
}

func TestNewDemuxValidation(t *testing.T) {
	if _, err := NewDemux(DemuxConfig{Self: 0}); err == nil {
		t.Fatal("no sub-machines accepted")
	}
	bad := &echoMachine{self: 7}
	if _, err := NewDemux(DemuxConfig{Self: 0, Subs: []proto.Machine{bad}}); err == nil {
		t.Fatal("mismatched sub identity accepted")
	}
}

// selfLooper replies to the first NewValue with a self-addressed probe
// and converts the probe into a broadcast Decide — exercising the
// inline self-delivery FIFO.
type selfLooper struct {
	proto.Recorder
	self ident.ProcessID
}

func (s *selfLooper) ID() ident.ProcessID   { return s.self }
func (s *selfLooper) Start() []proto.Output { return nil }
func (s *selfLooper) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	switch v := m.(type) {
	case msg.NewValue:
		return []proto.Output{proto.Send(s.self, msg.Wakeup{Tag: "loop|" + v.Cmd.Body})}
	case msg.Wakeup:
		return []proto.Output{proto.Bcast(msg.Decide{
			Value: lattice.FromStrings(s.self, v.Tag), Round: 7,
		})}
	}
	return nil
}

// TestDemuxInlineMode drives an inline (workerless) demux directly:
// routing, mute shards, broadcast expansion and self-addressed
// loop-backs must all behave like the worker mode, synchronously on
// the caller's goroutine.
func TestDemuxInlineMode(t *testing.T) {
	self, client := ident.ProcessID(0), ident.ProcessID(100)
	var mu sync.Mutex
	var sent []struct {
		to ident.ProcessID
		m  msg.ShardMsg
	}
	d, err := NewDemux(DemuxConfig{
		Self: self,
		Subs: []proto.Machine{&selfLooper{self: self}, nil}, // shard 1 mute
		All:  []ident.ProcessID{self, 1, client},
		Send: func(to ident.ProcessID, m msg.Msg) {
			sm, ok := m.(msg.ShardMsg)
			if !ok {
				t.Errorf("inline demux sent untagged %T", m)
				return
			}
			mu.Lock()
			sent = append(sent, struct {
				to ident.ProcessID
				m  msg.ShardMsg
			}{to, sm})
			mu.Unlock()
		},
		Inline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs := d.Start(); len(outs) != 0 {
		t.Fatalf("inline Start returned outputs: %v", outs)
	}

	// Shard 0: NewValue -> self-probe (local FIFO) -> broadcast Decide.
	cmd := lattice.Item{Author: client, Body: "x"}
	d.Handle(client, msg.ShardMsg{Shard: 0, Inner: msg.NewValue{Cmd: cmd}})
	mu.Lock()
	n := len(sent)
	mu.Unlock()
	// Broadcast over All minus self (self loops back internally and the
	// looper ignores Decide): 2 sends, all tagged shard 0.
	if n != 2 {
		t.Fatalf("inline broadcast expanded to %d sends, want 2", n)
	}
	for _, s := range sent {
		if s.m.Shard != 0 {
			t.Fatalf("send to %v tagged shard %d, want 0", s.to, s.m.Shard)
		}
		dec, ok := s.m.Inner.(msg.Decide)
		if !ok || dec.Round != 7 {
			t.Fatalf("send to %v carried %T (round?) — self-loop not processed", s.to, s.m.Inner)
		}
		if !dec.Value.Contains(lattice.Item{Author: self, Body: "loop|x"}) {
			t.Fatalf("self-loop payload lost: %v", dec.Value)
		}
	}

	// Mute shard swallows silently; out-of-range and untagged drop.
	d.Handle(client, msg.ShardMsg{Shard: 1, Inner: msg.NewValue{Cmd: cmd}})
	d.Handle(client, msg.ShardMsg{Shard: 9, Inner: msg.NewValue{Cmd: cmd}})
	d.Handle(client, msg.NewValue{Cmd: cmd})
	mu.Lock()
	after := len(sent)
	mu.Unlock()
	if after != n {
		t.Fatalf("mute/out-of-range/untagged traffic produced %d extra sends", after-n)
	}
	d.Stop() // no workers: must be a no-op, not a hang
}
