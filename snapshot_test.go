package bgla

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSnapshotBasicScan(t *testing.T) {
	snap, err := NewSnapshot(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Update("x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := snap.Update("y", "2"); err != nil {
		t.Fatal(err)
	}
	got, err := snap.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != "1" || got["y"] != "2" {
		t.Fatalf("Scan = %v", got)
	}
	v, err := snap.ScanComponent("x")
	if err != nil || v != "1" {
		t.Fatalf("ScanComponent = %q, %v", v, err)
	}
	if miss, _ := snap.ScanComponent("nope"); miss != "" {
		t.Fatalf("unwritten component = %q", miss)
	}
}

func TestSnapshotOverwriteVisibility(t *testing.T) {
	snap, err := NewSnapshot(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 1; i <= 3; i++ {
		if err := snap.Update("reg", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		got, err := snap.ScanComponent("reg")
		if err != nil {
			t.Fatal(err)
		}
		if got != fmt.Sprintf("v%d", i) {
			t.Fatalf("after write %d: scan = %q", i, got)
		}
	}
}

func TestSnapshotScansComparable(t *testing.T) {
	// Scans interleaved with updates must be monotone: a later scan
	// reflects a superset of writes (here: same or newer per component).
	snap, err := NewSnapshot(ServiceConfig{Replicas: 4, Faulty: 1, Jitter: 300 * time.Microsecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	var scans []map[string]string
	for i := 0; i < 4; i++ {
		if err := snap.Update("a", fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := snap.Update("b", fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
		got, err := snap.Scan()
		if err != nil {
			t.Fatal(err)
		}
		scans = append(scans, got)
	}
	for i := 1; i < len(scans); i++ {
		// Values are vK with increasing K: later scans never regress.
		for _, comp := range []string{"a", "b"} {
			if scans[i][comp] < scans[i-1][comp] {
				t.Fatalf("scan %d regressed on %s: %q after %q",
					i, comp, scans[i][comp], scans[i-1][comp])
			}
		}
	}
}

func TestSnapshotWithMuteReplica(t *testing.T) {
	snap, err := NewSnapshot(ServiceConfig{Replicas: 4, Faulty: 1, MuteReplicas: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Update("k", "v"); err != nil {
		t.Fatal(err)
	}
	got, err := snap.ScanComponent("k")
	if err != nil || got != "v" {
		t.Fatalf("scan = %q, %v", got, err)
	}
	if !strings.Contains(snap.String(), "1 components") {
		t.Fatalf("String = %s", snap.String())
	}
}
