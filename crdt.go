package bgla

import (
	"bgla/internal/crdt"
	"bgla/internal/ident"
	"bgla/internal/lattice"
)

// CRDT command constructors — commands for the Service's Update method.
// Commands commute: the replicated views below depend only on the set
// of commands, never on arrival order, which is the prerequisite of the
// paper's RSM construction (§1, §7).

// AddCmd encodes a set-add (G-Set / 2P-Set element insertion).
func AddCmd(elem string) string { return crdt.AddCmd(elem) }

// RemCmd encodes a 2P-Set removal (remove wins permanently).
func RemCmd(elem string) string { return crdt.RemCmd(elem) }

// IncCmd encodes a counter increment.
func IncCmd(amount uint64) string { return crdt.IncCmd(amount) }

// DecCmd encodes a counter decrement (PN-Counter).
func DecCmd(amount uint64) string { return crdt.DecCmd(amount) }

// PutCmd encodes a last-writer-wins map write.
func PutCmd(key string, stamp uint64, value string) string {
	return crdt.PutCmd(key, stamp, value)
}

func itemsToSet(items []Item) lattice.Set {
	conv := make([]lattice.Item, len(items))
	for i, it := range items {
		conv[i] = lattice.Item{Author: ident.ProcessID(it.Author), Body: it.Body}
	}
	return lattice.FromItems(conv...)
}

// SetView folds a read state into 2P-Set membership.
func SetView(state []Item) []string { return crdt.SetView(itemsToSet(state)) }

// CounterView folds a read state into the PN-Counter value.
func CounterView(state []Item) int64 { return crdt.CounterView(itemsToSet(state)) }

// MapView folds a read state into the LWW map.
func MapView(state []Item) map[string]string { return crdt.MapView(itemsToSet(state)) }
