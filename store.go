package bgla

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bgla/internal/batch"
	"bgla/internal/compact"
	"bgla/internal/core"
	"bgla/internal/core/gwts"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/obs"
	"bgla/internal/proto"
	"bgla/internal/rsm"
	"bgla/internal/shard"
	"bgla/internal/sig"
	"bgla/internal/wal"
)

// ShardedConfig configures a sharded multi-lattice store: S independent
// BGLA clusters (each the full §7 construction — its own GWTS protocol
// state, batching pipeline and wire streams) multiplexed over one
// shared transport by the shard-tagged envelope of internal/shard.
type ShardedConfig struct {
	// Shards is S, the number of independent lattice instances
	// (default 1, which is an unsharded Service with a Scan method).
	Shards int

	// ServiceConfig carries the per-cluster knobs: every shard runs on
	// the same n replica processes with the same fault bound, jitter and
	// batching pipeline configuration. MuteReplicas mutes a replica
	// process in every shard.
	ServiceConfig

	// ShardMutes[s] lists replica indices to run as mute Byzantine
	// replicas in shard s only (per-shard fault injection: the replica
	// process stays correct for every other shard). Combined with
	// MuteReplicas, at most Faulty replicas may be mute per shard.
	ShardMutes [][]int
}

// Store is a horizontally partitioned replicated state machine:
// commands are routed to one of S independent lattices by the data-item
// key they address (hash-partitioned when keyless), so aggregate
// throughput scales with S while each shard keeps the exact per-key
// semantics, fault tolerance and client guarantees of the single
// Service. All methods are safe for concurrent use.
//
//   - Update routes a command to its shard (Algorithm 5 semantics
//     within that shard);
//   - Read is a confirmed point read of one key's shard (Algorithm 6);
//   - Scan is a consistent cross-shard read: per-shard confirmed reads
//     merged under a rescan loop that retries until no shard's view
//     advanced between two consecutive passes, which pins the merged
//     result to a real global state (see DESIGN.md §5) — so any two
//     Scans are totally ordered, like single-lattice reads.
type Store struct {
	cfg     ShardedConfig
	net     Transport
	demuxes []*shard.Demux
	pipes   []*batch.Pipeline
	reps    []*gwts.Machine
	pers    []*wal.Persister
	seq     atomic.Uint64

	scans       atomic.Uint64
	scanPasses  atomic.Uint64
	scanRetries atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	closeOnce sync.Once
	closed    atomic.Bool
	frozen    frozenStoreStats
}

// frozenStoreStats is the terminal snapshot Close captures after
// teardown (see Service.Close).
type frozenStoreStats struct {
	store      StoreStats
	compaction CompactionStats
	storage    StorageStats
	latency    obs.HistSnapshot
}

// NewStore builds and starts the sharded cluster.
func NewStore(cfg ShardedConfig) (*Store, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("bgla: %d shards", cfg.Shards)
	}
	if err := core.ValidateConfig(cfg.Replicas, cfg.Faulty); err != nil {
		return nil, err
	}
	if len(cfg.ShardMutes) > cfg.Shards {
		return nil, fmt.Errorf("bgla: mutes for %d shards, only %d configured", len(cfg.ShardMutes), cfg.Shards)
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = defaultOpTimeout
	}
	cfg.Obs.normalize()

	// Per-shard mute sets: process-wide mutes apply everywhere, shard
	// mutes only to their shard. Each shard independently tolerates at
	// most Faulty mute replicas.
	for _, i := range cfg.MuteReplicas {
		if i < 0 || i >= cfg.Replicas {
			return nil, fmt.Errorf("bgla: mute replica %d out of range", i)
		}
	}
	mutes := make([]*ident.Set, cfg.Shards)
	for s := range mutes {
		mutes[s] = ident.NewSet()
		for _, i := range cfg.MuteReplicas {
			mutes[s].Add(ident.ProcessID(i))
		}
	}
	for s, list := range cfg.ShardMutes {
		for _, i := range list {
			if i < 0 || i >= cfg.Replicas {
				return nil, fmt.Errorf("bgla: shard %d mute replica %d out of range", s, i)
			}
			mutes[s].Add(ident.ProcessID(i))
		}
	}
	for s := range mutes {
		if mutes[s].Len() > cfg.Faulty {
			return nil, fmt.Errorf("bgla: %d mute replicas in shard %d exceed f=%d", mutes[s].Len(), s, cfg.Faulty)
		}
	}

	all := append(ident.Range(cfg.Replicas), clientID)
	gw := shard.NewGateway(clientID, cfg.Shards)
	machines := []proto.Machine{gw}
	demuxes := make([]*shard.Demux, 0, cfg.Replicas)
	// Per-shard checkpoint triggers: the configured thresholds are the
	// store-wide budget, divided across shards (each shard sees ~1/S of
	// the history) so compaction cadence tracks aggregate load.
	var kc sig.Keychain
	shardCfg := cfg.ServiceConfig
	shardCfg.CheckpointEvery = compact.ScaleEvery(cfg.CheckpointEvery, cfg.Shards)
	shardCfg.CheckpointBytes = compact.ScaleBytes(cfg.CheckpointBytes, cfg.Shards)
	if shardCfg.CheckpointEvery > 0 || shardCfg.CheckpointBytes > 0 {
		kc = sig.NewSim(cfg.Replicas, cfg.Seed+0x5eed)
	}
	var reps []*gwts.Machine
	var pers []*wal.Persister
	for i := 0; i < cfg.Replicas; i++ {
		id := ident.ProcessID(i)
		subs := make([]proto.Machine, cfg.Shards)
		for s := 0; s < cfg.Shards; s++ {
			if mutes[s].Has(id) {
				continue // nil sub = mute in this shard
			}
			rc := rsm.ReplicaConfig{
				Self: id, N: cfg.Replicas, F: cfg.Faulty,
				Clients: []ident.ProcessID{clientID},
				Trace:   cfg.Obs.ConsensusTrace, Clock: cfg.Obs.Clock,
				Shard: s,
			}
			if kc != nil {
				rc.Compaction = replicaCompaction(shardCfg, kc, id)
			}
			r, err := rsm.NewReplica(rc)
			if err != nil {
				return nil, err
			}
			m := proto.Machine(r)
			if cfg.DataDir != "" {
				p, err := openReplicaLog(shardCfg, s, i, r)
				if err != nil {
					return nil, err
				}
				pers = append(pers, p)
				m = p
			}
			w := cfg.wrapReplica(s, i, m)
			if w == m {
				reps = append(reps, r)
			}
			subs[s] = w
		}
		d, err := shard.NewDemux(shard.DemuxConfig{
			Self: id, Subs: subs, All: all,
			Inline: cfg.Hooks != nil && cfg.Hooks.InlineShards,
		})
		if err != nil {
			return nil, err
		}
		demuxes = append(demuxes, d)
		machines = append(machines, d)
	}
	net := cfg.newTransport(machines)
	si, hasSync := net.(syncInjector)
	for _, d := range demuxes {
		if hasSync && cfg.Hooks != nil && cfg.Hooks.InlineShards {
			// Inline demuxes emit on the transport's delivery goroutine:
			// keep their protocol traffic on the deterministic
			// machine-sequencing path.
			d.SetSend(func(to ident.ProcessID, m msg.Msg) { si.InjectSync(d.ID(), to, m) })
			continue
		}
		d.SetSend(func(to ident.ProcessID, m msg.Msg) { net.Inject(d.ID(), to, m) })
	}

	// Resume the client sequence past every recovered incarnation (see
	// recoveredSeq / rsm.MaxSeq); all shards share the client identity,
	// so every shard pipeline starts beyond the global maximum.
	startSeq := recoveredSeq(pers)

	pipes := make([]*batch.Pipeline, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		// Trigger new_value at f+1 replicas correct *in this shard*
		// (mute shard instances relay nothing; see Service).
		var submitTo []ident.ProcessID
		for i := 0; i < cfg.Replicas && len(submitTo) < core.ReadQuorum(cfg.Faulty); i++ {
			if id := ident.ProcessID(i); !mutes[s].Has(id) {
				submitTo = append(submitTo, id)
			}
		}
		p, err := batch.New(batch.Config{
			Client:      clientID,
			Replicas:    ident.Range(cfg.Replicas),
			SubmitTo:    submitTo,
			F:           cfg.Faulty,
			MaxBatch:    cfg.MaxBatch,
			MaxDelay:    cfg.MaxBatchDelay,
			MinBatch:    cfg.MinBatch,
			MaxInFlight: cfg.MaxInFlight,
			QueueDepth:  cfg.QueueDepth,
			OpTimeout:   cfg.OpTimeout,
			StartSeq:    uint64(startSeq),
			Registry:    cfg.Obs.Registry,
			Shard:       s,
			Clock:       cfg.Obs.Clock,
			Trace:       cfg.Obs.ClientTrace,
		}, shard.NewSender(s, func(to ident.ProcessID, m msg.Msg) {
			net.Inject(clientID, to, m)
		}))
		if err != nil {
			for _, q := range pipes {
				if q != nil {
					q.Close()
				}
			}
			return nil, err
		}
		pipes[s] = p
	}
	gw.SetDeliver(func(s int, from ident.ProcessID, m msg.Msg) { pipes[s].Deliver(from, m) })
	net.Start()
	st := &Store{
		cfg: cfg, net: net, demuxes: demuxes, pipes: pipes, reps: reps, pers: pers,
		rng: rand.New(rand.NewSource(cfg.Seed + 0x5ca0)),
	}
	st.seq.Store(uint64(startSeq))
	registerClusterViews(cfg.Obs.Registry, reps, pers)
	reg := cfg.Obs.Registry
	reg.CounterFunc("bgla_scans_total", st.scans.Load)
	reg.CounterFunc("bgla_scan_passes_total", st.scanPasses.Load)
	reg.CounterFunc("bgla_scan_retries_total", st.scanRetries.Load)
	return st, nil
}

// Close shuts the whole cluster down: every shard pipeline, every
// replica's shard workers, then the transport. Idempotent and safe to
// call concurrently; blocked callers return an error.
func (st *Store) Close() {
	st.closeOnce.Do(func() {
		for _, p := range st.pipes {
			p.Close()
		}
		// Workers quiesce before the net stops: they inject into the
		// transport, and chanet.Stop must not race with Inject.
		for _, d := range st.demuxes {
			d.Stop()
		}
		st.net.Stop()
		// The transport has quiesced: flush and close the durable logs
		// last so every decided record reached disk.
		for _, p := range st.pers {
			_ = p.Close()
		}
		// Freeze the stats surfaces (see Service.Close): post-close
		// snapshots return one consistent terminal state.
		st.frozen = frozenStoreStats{
			store:      st.liveStats(),
			compaction: aggregateCompaction(st.reps),
			storage:    aggregateStorage(st.pers),
			latency:    st.liveLatency(),
		}
		st.closed.Store(true)
	})
}

// Shards returns S.
func (st *Store) Shards() int { return st.cfg.Shards }

// ShardOfKey reports which shard owns a data-item key (the map key of
// PutCmd, the element of AddCmd/RemCmd).
func (st *Store) ShardOfKey(key string) int { return shard.Of(key, st.cfg.Shards) }

// Update applies a commutative command to the shard owning its key
// (hash-partitioned when keyless) and returns once it is durably
// decided there (Algorithm 5 within the shard).
func (st *Store) Update(body string) error {
	return st.UpdateCtx(context.Background(), body)
}

// UpdateCtx is Update with caller-controlled cancellation.
func (st *Store) UpdateCtx(ctx context.Context, body string) error {
	seq := st.seq.Add(1)
	s := shard.Route(body, seq, st.cfg.Shards)
	return st.pipes[s].Update(ctx, rsm.UniqueCmd(clientID, int(seq), body))
}

// Read returns the confirmed state of the shard owning key, as command
// items (Algorithm 6 within that shard). It covers every command
// addressing that key — a point read never pays for other shards.
func (st *Store) Read(key string) ([]Item, error) {
	return st.ReadCtx(context.Background(), key)
}

// ReadCtx is Read with caller-controlled cancellation.
func (st *Store) ReadCtx(ctx context.Context, key string) ([]Item, error) {
	v, err := st.pipes[st.ShardOfKey(key)].Read(ctx)
	if err != nil {
		return nil, err
	}
	return fromLatticeSet(rsm.StripNops(v)), nil
}

// Scan consistency knobs: the rescan loop retries at most
// maxScanRescans times, sleeping a jittered, exponentially growing
// backoff between passes so a scan racing sustained writers stops
// burning CPU against the very pipelines it is waiting on.
const (
	maxScanRescans   = 16
	scanBackoffBase  = 200 * time.Microsecond
	scanBackoffLimit = 20 * time.Millisecond
)

// ErrScanContended reports that a Scan lost the double-collect race to
// concurrent writers maxScanRescans times in a row. Callers retry (or
// scan during a quieter window); returning a merged-but-unstable view
// would break the total order of Scans.
var ErrScanContended = errors.New("bgla: scan contended: shard views kept advancing between passes")

// Scan returns a consistent global state across every shard. Any two
// Scans are totally ordered (one reflects a superset of the commands of
// the other) and every completed Update is visible to later Scans.
func (st *Store) Scan() ([]Item, error) {
	return st.ScanCtx(context.Background())
}

// ScanCtx is Scan with caller-controlled cancellation. The rescan loop
// re-reads all shards until two consecutive passes agree; under heavy
// sustained writes each losing pass backs off (jittered exponential,
// observable as StoreStats.ScanRetries) and after maxScanRescans
// losses the scan fails with ErrScanContended rather than spinning
// against the writers (ctx and the configured OpTimeout bound the wait
// either way).
func (st *Store) ScanCtx(ctx context.Context) ([]Item, error) {
	st.scans.Add(1)
	// OpTimeout bounds the whole scan, not each inner read: a rescan
	// loop that keeps losing races against writers must eventually fail
	// rather than spin.
	ctx, cancel := context.WithTimeout(ctx, st.cfg.OpTimeout)
	defer cancel()
	views, err := st.collect(ctx)
	if err != nil {
		return nil, err
	}
	// S=1 is already a linearizable read; rescanning buys nothing.
	if st.cfg.Shards > 1 {
		stable := false
		for attempt := 0; attempt < maxScanRescans; attempt++ {
			next, err := st.collect(ctx)
			if err != nil {
				return nil, err
			}
			stable = true
			for s := range views {
				if views[s].Digest() != next[s].Digest() {
					stable = false
				}
			}
			views = next
			if stable {
				break
			}
			st.scanRetries.Add(1)
			if err := st.scanBackoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		if !stable {
			return nil, ErrScanContended
		}
	}
	var items []lattice.Item
	for _, v := range views {
		items = append(items, v.Items()...)
	}
	return fromLatticeSet(lattice.FromItems(items...)), nil
}

// scanBackoff sleeps a jittered exponential delay before the next
// rescan pass (full jitter: uniform in (0, base·2^attempt], capped).
func (st *Store) scanBackoff(ctx context.Context, attempt int) error {
	d := scanBackoffBase << attempt
	if d > scanBackoffLimit || d <= 0 {
		d = scanBackoffLimit
	}
	st.rngMu.Lock()
	d = time.Duration(st.rng.Int63n(int64(d))) + 1
	st.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// collect runs one pass of per-shard confirmed reads and returns the
// nop-stripped views. The pass is parallel in production; under the
// deterministic harness (Hooks.InlineShards) it reads shard by shard,
// so the transport only ever sees one outstanding client burst — the
// property that makes admission placement timing-independent
// (internal/faultnet; the double-collect consistency argument of
// DESIGN.md §5 never depended on intra-pass parallelism).
func (st *Store) collect(ctx context.Context) ([]lattice.Set, error) {
	st.scanPasses.Add(1)
	views := make([]lattice.Set, st.cfg.Shards)
	if st.cfg.Hooks != nil && st.cfg.Hooks.InlineShards {
		for s := range st.pipes {
			v, err := st.pipes[s].Read(ctx)
			if err != nil {
				return nil, err
			}
			views[s] = rsm.StripNops(v)
		}
		return views, nil
	}
	errs := make([]error, st.cfg.Shards)
	var wg sync.WaitGroup
	for s := range st.pipes {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			v, err := st.pipes[s].Read(ctx)
			if err != nil {
				errs[s] = err
				return
			}
			views[s] = rsm.StripNops(v)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return views, nil
}

// StoreStats aggregates pipeline activity across shards plus the scan
// loop's rescan behaviour.
type StoreStats struct {
	// PerShard holds each shard's pipeline counters.
	PerShard []BatchStats
	// Total sums them.
	Total BatchStats
	// Scans counts ScanCtx calls; ScanPasses the per-shard read fan-outs
	// they ran (ScanPasses/Scans > 2 means writers forced rescans).
	Scans, ScanPasses uint64
	// ScanRetries counts rescan passes that lost the double-collect
	// race and backed off before retrying (sustained-write contention).
	ScanRetries uint64
}

// Stats snapshots the store's counters. After Close it returns the
// frozen terminal snapshot.
func (st *Store) Stats() StoreStats {
	if st.closed.Load() {
		return st.frozen.store
	}
	return st.liveStats()
}

func (st *Store) liveStats() StoreStats {
	out := StoreStats{
		Scans: st.scans.Load(), ScanPasses: st.scanPasses.Load(),
		ScanRetries: st.scanRetries.Load(),
	}
	for _, p := range st.pipes {
		bs := batchStatsOf(p)
		out.PerShard = append(out.PerShard, bs)
		out.Total.Ops += bs.Ops
		out.Total.Updates += bs.Updates
		out.Total.Reads += bs.Reads
		out.Total.Flights += bs.Flights
		out.Total.Timeouts += bs.Timeouts
		if bs.MaxBatchOps > out.Total.MaxBatchOps {
			out.Total.MaxBatchOps = bs.MaxBatchOps
		}
	}
	if out.Total.Flights > 0 {
		out.Total.AvgBatch = float64(out.Total.Ops) / float64(out.Total.Flights)
	}
	return out
}

// CompactionStats aggregates checkpoint activity across every shard
// replica (atomics — safe while the store runs). All zero unless
// CheckpointEvery/CheckpointBytes are set. After Close it returns the
// frozen terminal snapshot.
func (st *Store) CompactionStats() CompactionStats {
	if st.closed.Load() {
		return st.frozen.compaction
	}
	return aggregateCompaction(st.reps)
}

// StorageStats aggregates WAL activity across every shard replica's
// durable log (atomics — safe while the store runs). All zero unless
// DataDir is set. After Close it returns the frozen terminal snapshot.
func (st *Store) StorageStats() StorageStats {
	if st.closed.Load() {
		return st.frozen.storage
	}
	return aggregateStorage(st.pers)
}

// Metrics returns the registry backing the store's instruments (the
// configured ObsConfig.Registry, or the private one the zero config
// got). Per-shard series are labeled shard="<s>".
func (st *Store) Metrics() *obs.Registry { return st.cfg.Obs.Registry }

// LatencyStats merges the per-shard decision-latency histograms into
// one store-level snapshot. After Close it returns the frozen terminal
// snapshot.
func (st *Store) LatencyStats() obs.HistSnapshot {
	if st.closed.Load() {
		return st.frozen.latency
	}
	return st.liveLatency()
}

func (st *Store) liveLatency() obs.HistSnapshot {
	var out obs.HistSnapshot
	for _, p := range st.pipes {
		out.Merge(p.LatencySnapshot())
	}
	return out
}
