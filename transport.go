package bgla

import (
	"time"

	"bgla/internal/chanet"
	"bgla/internal/ident"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/wal"
)

// Transport is the injection point between the public stack and its
// network: the Service and Store drive any implementation of this
// surface. The default is the live goroutine network (internal/chanet);
// the deterministic fault-injection harness (internal/faultnet)
// implements the same surface, so the entire stack — batching
// pipelines, shard demuxes, checkpoint compaction, state transfer —
// runs unmodified under scripted and randomized fault schedules.
type Transport interface {
	// Start launches delivery (machine Start outputs included).
	Start()
	// Inject delivers a message from an external identity (the client
	// gateway, a shard pipeline). Safe for concurrent use.
	Inject(from, to ident.ProcessID, m msg.Msg)
	// Stop shuts delivery down and waits for quiescence of the
	// transport's own goroutines. Idempotent.
	Stop()
}

// syncInjector is an optional Transport capability: enqueue a message
// synchronously from within a machine Handle running on the
// transport's own delivery goroutine, preserving deterministic
// sequencing. The Store routes inline shard-demux sends through it
// (faultnet implements it; the live transports don't need it).
type syncInjector interface {
	InjectSync(from, to ident.ProcessID, m msg.Msg)
}

// TransportOptions carries the network knobs of a ServiceConfig to a
// custom transport constructor.
type TransportOptions struct {
	// Jitter is the configured random delivery delay bound.
	Jitter time.Duration
	// Seed drives the transport's randomness.
	Seed int64
}

// ServiceHooks are test-only fault-injection points (nil in
// production). They let the deterministic harness substitute the
// transport underneath an unmodified Service/Store and lift Byzantine
// adversaries or crash-restart wrappers (internal/byz,
// compact.Restartable) into full-stack replica slots.
type ServiceHooks struct {
	// NewTransport replaces the default chanet transport. The machine
	// list is the full cluster: replica slots in ID order plus the
	// client gateway.
	NewTransport func(machines []proto.Machine, opts TransportOptions) Transport

	// WrapReplica may wrap or replace the machine of replica slot
	// `replica` in shard `shard` (always 0 for an unsharded Service).
	// It receives the correct machine the stack built for the slot (or
	// its mute stand-in) and returns the machine to place on the
	// network; returning nil keeps the original. Replacing a slot with
	// an adversary counts it toward the fault bound f — the hook
	// bypasses the MuteReplicas validation, so scenarios are
	// responsible for staying within n >= 3f+1.
	WrapReplica func(shard, replica int, m proto.Machine) proto.Machine

	// InlineShards runs every shard sub-machine inline on the
	// transport's delivery goroutine instead of on per-shard workers
	// (shard.Demux). Deterministic transports need this: worker
	// goroutines would reintroduce scheduling nondeterminism.
	InlineShards bool

	// Storage substitutes the filesystem and per-slot fault hooks
	// underneath the durable storage engine when DataDir is set — the
	// disk counterpart of NewTransport (internal/wal, DESIGN.md §8).
	Storage *StorageHooks
}

// StorageHooks is the storage fault seam: a replacement filesystem
// (wal.MemFS with its synced-byte power-loss model) and per-slot
// write/fsync interceptors for torn-write, bit-flip and partial-fsync
// injection at the record boundary.
type StorageHooks struct {
	// FS replaces the OS filesystem (nil keeps wal.OSFS).
	FS wal.FS
	// Hooks returns the fault hooks for one replica slot (nil for
	// none); called once per slot at construction.
	Hooks func(shard, replica int) *wal.Hooks
}

// storageFS resolves the filesystem the storage engine writes to.
func (cfg ServiceConfig) storageFS() wal.FS {
	if cfg.Hooks != nil && cfg.Hooks.Storage != nil && cfg.Hooks.Storage.FS != nil {
		return cfg.Hooks.Storage.FS
	}
	return wal.OSFS{}
}

// walOptions builds one replica slot's log options from the config.
func (cfg ServiceConfig) walOptions(shard, replica int) (wal.Options, error) {
	pol, err := wal.ParsePolicy(cfg.SyncMode)
	if err != nil {
		return wal.Options{}, err
	}
	opt := wal.Options{
		Policy:       pol,
		GroupEvery:   cfg.GroupSync,
		SegmentBytes: cfg.SegmentBytes,
		Trace:        cfg.Obs.ConsensusTrace,
		Clock:        cfg.Obs.Clock,
		Shard:        shard,
		Proc:         ident.ProcessID(replica).String(),
	}
	if cfg.Hooks != nil && cfg.Hooks.Storage != nil && cfg.Hooks.Storage.Hooks != nil {
		opt.Hooks = cfg.Hooks.Storage.Hooks(shard, replica)
	}
	return opt, nil
}

// wrapReplica applies the WrapReplica hook for one slot.
func (cfg ServiceConfig) wrapReplica(shard, replica int, m proto.Machine) proto.Machine {
	if cfg.Hooks == nil || cfg.Hooks.WrapReplica == nil {
		return m
	}
	if w := cfg.Hooks.WrapReplica(shard, replica, m); w != nil {
		return w
	}
	return m
}

// newTransport builds the configured transport (default: chanet).
func (cfg ServiceConfig) newTransport(machines []proto.Machine) Transport {
	if cfg.Hooks != nil && cfg.Hooks.NewTransport != nil {
		return cfg.Hooks.NewTransport(machines, TransportOptions{Jitter: cfg.Jitter, Seed: cfg.Seed})
	}
	return chanet.New(machines, chanet.Options{MaxJitter: cfg.Jitter, Seed: cfg.Seed})
}
