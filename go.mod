module bgla

go 1.24
