package bgla

import (
	"context"
	"fmt"
	"sync"
)

// Snapshot is a Byzantine-tolerant atomic snapshot object, the
// application that originally motivated lattice agreement (Attiya,
// Herlihy, Rachman — §1/§2 of the paper: implementing a snapshot object
// is equivalent to solving Lattice Agreement). Each component holds the
// latest value written to it; Scan returns a consistent global
// photograph: scans are totally ordered (any two scans are comparable
// component-wise) and every completed Update is visible to later scans.
//
// Internally each Update is a last-writer-wins command on the RSM
// lattice, with a per-component sequence number as the write stamp, and
// Scan is an RSM read folded through the LWW map view.
//
// Memory model: the writer-side state is one global stamp counter plus
// a diagnostic map of recently written component names, bounded at
// snapshotSeqCap entries (oldest names evicted first — correctness
// never depends on the map, because stamps are globally monotone per
// writer). The replicated state itself grows with the command history;
// enable ServiceConfig.CheckpointEvery to fold the decided prefix into
// checkpoints and keep the cluster's resident state O(window).
type Snapshot struct {
	svc *Service

	mu    sync.Mutex
	seq   map[string]uint64 // recent per-component write stamps (diagnostics)
	order []string          // FIFO over seq for eviction
	stamp uint64
}

// snapshotSeqCap bounds the per-writer component-stamp map: beyond it,
// the oldest component entries are evicted. Previously the map grew
// with the number of distinct component names forever.
const snapshotSeqCap = 1024

// NewSnapshot builds a snapshot object over a fresh replica cluster.
func NewSnapshot(cfg ServiceConfig) (*Snapshot, error) {
	svc, err := NewService(cfg)
	if err != nil {
		return nil, err
	}
	return &Snapshot{svc: svc, seq: map[string]uint64{}}, nil
}

// Close shuts the underlying cluster down.
func (s *Snapshot) Close() { s.svc.Close() }

// Update writes value into the named component and returns once the
// write is durably decided. Safe for concurrent use: concurrent writers
// ride the Service's batching pipeline, so k concurrent Updates cost
// ~one agreement round, not k.
func (s *Snapshot) Update(component, value string) error {
	return s.UpdateCtx(context.Background(), component, value)
}

// UpdateCtx is Update with caller-controlled cancellation.
func (s *Snapshot) UpdateCtx(ctx context.Context, component, value string) error {
	s.mu.Lock()
	s.stamp++
	st := s.stamp
	if _, seen := s.seq[component]; !seen {
		s.order = append(s.order, component)
		for len(s.order) > snapshotSeqCap {
			delete(s.seq, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.seq[component] = st
	s.mu.Unlock()
	return s.svc.UpdateCtx(ctx, PutCmd(component, st, value))
}

// Scan returns a consistent snapshot of all components. Two scans are
// always comparable: one reflects a superset of the writes of the other.
func (s *Snapshot) Scan() (map[string]string, error) {
	return s.ScanCtx(context.Background())
}

// ScanCtx is Scan with caller-controlled cancellation.
func (s *Snapshot) ScanCtx(ctx context.Context) (map[string]string, error) {
	state, err := s.svc.ReadCtx(ctx)
	if err != nil {
		return nil, err
	}
	return MapView(state), nil
}

// ScanComponent reads one component (empty string when unwritten).
func (s *Snapshot) ScanComponent(component string) (string, error) {
	snap, err := s.Scan()
	if err != nil {
		return "", err
	}
	return snap[component], nil
}

// String renders a diagnostic summary (component count is of the
// bounded recent-writes map, capped at snapshotSeqCap).
func (s *Snapshot) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("bgla.Snapshot{writes: %d components, %d stamps}", len(s.seq), s.stamp)
}
