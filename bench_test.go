package bgla_test

// One benchmark per experiment table (E1..E14 of EXPERIMENTS.md): each
// regenerates its table through the internal/exp harness and reports
// the headline metric, so `go test -bench=.` reproduces the paper's
// quantitative claims end to end. Micro-benchmarks of the protocol hot
// paths follow.

import (
	"fmt"
	"strconv"
	"testing"

	"bgla"
	"bgla/internal/exp"
)

// benchTable runs a table generator under the benchmark loop and fails
// the benchmark if the experiment's expectations do not hold.
func benchTable(b *testing.B, gen func() *exp.Table, metricCol string, metricName string) {
	b.Helper()
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = gen()
	}
	if !last.Pass {
		b.Fatalf("experiment failed:\n%s", last.Render())
	}
	if metricCol != "" {
		// Report the metric of the last row (largest configuration).
		idx := -1
		for i, c := range last.Columns {
			if c == metricCol {
				idx = i
			}
		}
		if idx >= 0 && len(last.Rows) > 0 {
			if v, err := strconv.ParseFloat(last.Rows[len(last.Rows)-1][idx], 64); err == nil {
				b.ReportMetric(v, metricName)
			}
		}
	}
}

func BenchmarkE1FigureChain(b *testing.B) {
	benchTable(b, exp.FigureChain, "|decision|", "decision-size")
}

func BenchmarkE2ResilienceBound(b *testing.B) {
	benchTable(b, exp.ResilienceBound, "", "")
}

func BenchmarkE3WTSDelays(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.WTSDelays(true) }, "", "")
}

func BenchmarkE4WTSMessages(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.WTSMessages(true) }, "per-proc max", "msgs/proc")
}

func BenchmarkE5Refinements(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.WTSRefinements(true) }, "max refinements", "refinements")
}

func BenchmarkE6GWTSMessages(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.GWTSMessages(true) }, "per-proc msgs", "msgs/proc")
}

func BenchmarkE7SbSDelays(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.SbSDelays(true) }, "", "")
}

func BenchmarkE8SbSMessages(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.SbSVsWTSMessages(true) }, "SbS per-proc", "msgs/proc")
}

func BenchmarkE9GSbSMessages(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.GSbSVsGWTSMessages(true) }, "GSbS per-dec", "msgs/decision")
}

func BenchmarkE10RSM(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.RSMWorkload(true) }, "avg op delays", "delays/op")
}

func BenchmarkE11Baseline(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.BaselineComparison(true) }, "msg overhead", "byz-overhead-x")
}

func BenchmarkE12Ablations(b *testing.B) {
	benchTable(b, exp.Ablations, "", "")
}

func BenchmarkE13WaitFree(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.WaitFree(true) }, "", "")
}

func BenchmarkE14Throughput(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.Throughput(true) }, "values/decision", "values/decision")
}

func BenchmarkE15BatchThroughput(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.BatchThroughput(true) }, "ops/sec", "ops/sec")
}

func BenchmarkE17ShardThroughput(b *testing.B) {
	benchTable(b, func() *exp.Table { return exp.ShardThroughput(true) }, "ops/sec", "ops/sec")
}

// --- protocol micro-benchmarks -------------------------------------------

func proposalsFor(n int) map[int][]string {
	out := make(map[int][]string, n)
	for i := 0; i < n; i++ {
		out[i] = []string{fmt.Sprintf("v%d", i)}
	}
	return out
}

func benchSolve(b *testing.B, algo bgla.Algorithm, n, f int) {
	b.Helper()
	props := proposalsFor(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := bgla.Solve(bgla.Config{N: n, F: f, Algorithm: algo, Proposals: props, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatalf("violations: %v", rep.Violations)
		}
	}
}

func BenchmarkWTSDecideN4(b *testing.B)  { benchSolve(b, bgla.WTS, 4, 1) }
func BenchmarkWTSDecideN16(b *testing.B) { benchSolve(b, bgla.WTS, 16, 5) }
func BenchmarkSbSDecideN4(b *testing.B)  { benchSolve(b, bgla.SbS, 4, 1) }
func BenchmarkSbSDecideN16(b *testing.B) { benchSolve(b, bgla.SbS, 16, 5) }

func BenchmarkGWTSRoundsN4(b *testing.B) {
	values := proposalsFor(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := bgla.SolveGeneralized(bgla.GenConfig{
			N: 4, F: 1, Algorithm: bgla.GWTS, Values: values, MinRounds: 3, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatalf("violations: %v", rep.Violations)
		}
	}
}

func BenchmarkGSbSRoundsN4(b *testing.B) {
	values := proposalsFor(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := bgla.SolveGeneralized(bgla.GenConfig{
			N: 4, F: 1, Algorithm: bgla.GSbS, Values: values, MinRounds: 2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatalf("violations: %v", rep.Violations)
		}
	}
}

func BenchmarkServiceUpdate(b *testing.B) {
	svc, err := bgla.NewService(bgla.ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Update(bgla.IncCmd(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceUpdateConcurrent drives parallel updaters through the
// batching pipeline; compare with BenchmarkServiceUpdateUnbatched to see
// the coalescing win under contention.
func BenchmarkServiceUpdateConcurrent(b *testing.B) {
	svc, err := bgla.NewService(bgla.ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := svc.Update(bgla.IncCmd(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceUpdateUnbatched forces the seed's one-at-a-time
// client (batch 1, one flight) under the same parallel load.
func BenchmarkServiceUpdateUnbatched(b *testing.B) {
	svc, err := bgla.NewService(bgla.ServiceConfig{
		Replicas: 4, Faulty: 1, MaxBatch: 1, MaxInFlight: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := svc.Update(bgla.IncCmd(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServiceRead(b *testing.B) {
	svc, err := bgla.NewService(bgla.ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Update(bgla.AddCmd("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
