package bgla

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestServiceConcurrentStress drives many goroutines of mixed
// Update/Read traffic against a cluster that includes a mute Byzantine
// replica, under the race detector, and checks the linearizability
// guarantees of §7 on the observed reads:
//
//   - reads are totally ordered: every pair of read states is
//     comparable (one is a subset of the other), across all goroutines;
//   - reads are monotone per caller: a later read never observes fewer
//     commands than an earlier one by the same goroutine;
//   - updates are visible: the final read reflects every completed
//     increment.
func TestServiceConcurrentStress(t *testing.T) {
	workers, opsPerWorker := 8, 12
	if testing.Short() {
		workers, opsPerWorker = 4, 6
	}
	seed := int64(42)
	if *seedFlag != 0 {
		seed = *seedFlag
	}
	t.Logf("jitter seed %d (replay: go test -run TestServiceConcurrentStress -seed=%d)", seed, seed)
	svc, err := NewService(ServiceConfig{
		Replicas: 4, Faulty: 1,
		MuteReplicas: []int{3},
		Jitter:       200 * time.Microsecond,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	type readObs struct {
		worker int
		items  map[string]bool
	}
	var (
		mu    sync.Mutex
		reads []readObs
	)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prevLen := -1
			for k := 0; k < opsPerWorker; k++ {
				if k%3 == 2 {
					state, err := svc.Read()
					if err != nil {
						errs <- fmt.Errorf("worker %d read %d: %w", w, k, err)
						return
					}
					items := make(map[string]bool, len(state))
					for _, it := range state {
						items[it.Body] = true
					}
					if len(items) < prevLen {
						errs <- fmt.Errorf("worker %d read %d shrank: %d < %d", w, k, len(items), prevLen)
						return
					}
					prevLen = len(items)
					mu.Lock()
					reads = append(reads, readObs{worker: w, items: items})
					mu.Unlock()
					continue
				}
				if err := svc.Update(IncCmd(1)); err != nil {
					errs <- fmt.Errorf("worker %d update %d: %w", w, k, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Total order on reads: sorted by size, each state must contain its
	// predecessor (two incomparable reads would violate Theorem 6).
	sort.Slice(reads, func(i, j int) bool { return len(reads[i].items) < len(reads[j].items) })
	for i := 1; i < len(reads); i++ {
		small, big := reads[i-1], reads[i]
		for body := range small.items {
			if !big.items[body] {
				t.Fatalf("incomparable reads: worker %d's %d-item state misses %q seen by worker %d",
					big.worker, len(big.items), body, small.worker)
			}
		}
	}

	// Update visibility: every completed increment is in the final read.
	updates := workers * opsPerWorker
	for w := 0; w < workers; w++ {
		updates -= opsPerWorker / 3
	}
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := CounterView(state); got != int64(updates) {
		t.Fatalf("final counter = %d, want %d", got, updates)
	}

	st := svc.BatchStats()
	if st.Ops == 0 || st.Flights == 0 {
		t.Fatalf("pipeline unused: %+v", st)
	}
	t.Logf("pipeline: %d ops over %d flights (avg batch %.2f, max %d)",
		st.Ops, st.Flights, st.AvgBatch, st.MaxBatchOps)
}
