// Crdtstore: a multi-datatype replicated store over one Byzantine
// tolerant RSM — a 2P-set of tags, a PN-counter of votes and a
// last-writer-wins configuration map all share the same decided command
// lattice, so one read returns a mutually consistent snapshot of all
// three structures.
package main

import (
	"fmt"
	"log"
	"time"

	"bgla"
)

func main() {
	svc, err := bgla.NewService(bgla.ServiceConfig{
		Replicas: 4,
		Faulty:   1,
		Jitter:   500 * time.Microsecond, // real concurrency + random delays
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	apply := func(cmd string) {
		if err := svc.Update(cmd); err != nil {
			log.Fatalf("update %q: %v", cmd, err)
		}
	}

	// Tag set (2P-set: removes win).
	apply(bgla.AddCmd("alpha"))
	apply(bgla.AddCmd("beta"))
	apply(bgla.AddCmd("gamma"))
	apply(bgla.RemCmd("beta"))

	// Vote counter (PN-counter).
	apply(bgla.IncCmd(10))
	apply(bgla.IncCmd(5))
	apply(bgla.DecCmd(3))

	// Config map (LWW register per key).
	apply(bgla.PutCmd("mode", 1, "bootstrap"))
	apply(bgla.PutCmd("mode", 2, "serving"))
	apply(bgla.PutCmd("region", 1, "eu-west"))

	state, err := svc.Read()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one consistent snapshot, three data types:")
	fmt.Printf("  tags    = %v\n", bgla.SetView(state))
	fmt.Printf("  votes   = %d\n", bgla.CounterView(state))
	fmt.Printf("  config  = %v\n", bgla.MapView(state))
	fmt.Println()
	fmt.Println("all three views fold the same decided command set: cross-type consistency for free")
}
