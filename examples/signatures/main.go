// Signatures: the §8 trade-off, measured. The same agreement task runs
// under WTS (authenticated channels only, O(n²) messages per process)
// and SbS (Ed25519 PKI, O(n) messages per proposer at f = O(1)); the
// table shows the quadratic-versus-linear gap widening with n.
package main

import (
	"fmt"
	"log"

	"bgla"
)

func main() {
	fmt.Println("message cost per process: WTS (no signatures) vs SbS (Ed25519), f=1")
	fmt.Println()
	fmt.Printf("%6s  %12s  %12s  %9s\n", "n", "WTS msgs", "SbS msgs", "WTS/SbS")

	for _, n := range []int{4, 8, 16, 32} {
		proposals := map[int][]string{}
		for i := 0; i < n; i++ {
			proposals[i] = []string{fmt.Sprintf("v%d", i)}
		}
		wts, err := bgla.Solve(bgla.Config{N: n, F: 1, Algorithm: bgla.WTS, Proposals: proposals})
		if err != nil {
			log.Fatal(err)
		}
		sbs, err := bgla.Solve(bgla.Config{N: n, F: 1, Algorithm: bgla.SbS, Proposals: proposals})
		if err != nil {
			log.Fatal(err)
		}
		if len(wts.Violations) > 0 || len(sbs.Violations) > 0 {
			log.Fatalf("violations: %v %v", wts.Violations, sbs.Violations)
		}
		fmt.Printf("%6d  %12d  %12d  %8.1fx\n",
			n, wts.PerProcessMax, sbs.PerProcessMax,
			float64(wts.PerProcessMax)/float64(sbs.PerProcessMax))
	}

	fmt.Println()
	fmt.Println("the PKI buys a linear message bill; the channels-only protocol pays")
	fmt.Println("quadratically for the reliable broadcast that replaces signatures")
	fmt.Println()
	fmt.Println("latency trade: WTS decides in <= 2f+5 delays, SbS in <= 5+4f")
}
