// Example sharding: the key-partitioned multi-lattice store. Four
// independent BGLA clusters share one transport; commands route to the
// shard owning their key (hash-spread when keyless), point reads touch
// a single shard, and Scan stitches a consistent global snapshot across
// all of them — while every shard tolerates its own mute Byzantine
// replica.
package main

import (
	"fmt"
	"log"
	"sync"

	"bgla"
)

func main() {
	st, err := bgla.NewStore(bgla.ShardedConfig{
		Shards: 4,
		ServiceConfig: bgla.ServiceConfig{
			Replicas: 4,
			Faulty:   1,
		},
		// A different mute Byzantine replica in every shard: no shard
		// exceeds f=1, even though every process is faulty somewhere.
		ShardMutes: [][]int{{0}, {1}, {2}, {3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Concurrent mixed workload: LWW map writes, set adds, counter
	// increments. Keyed commands colocate on their key's shard; the
	// increments hash-spread.
	users := []string{"ada", "bob", "cyd", "dee", "eve", "fae"}
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			check(st.Update(bgla.PutCmd("profile:"+u, uint64(i+1), u+"@example.com")))
			check(st.Update(bgla.AddCmd("active:" + u)))
			check(st.Update(bgla.IncCmd(1)))
		}(i, u)
	}
	wg.Wait()
	check(st.Update(bgla.RemCmd("active:eve")))

	// Point read: only profile:ada's shard is consulted.
	items, err := st.Read("profile:ada")
	check(err)
	fmt.Printf("point read (shard %d of %d): profile:ada = %q\n",
		st.ShardOfKey("profile:ada"), st.Shards(), bgla.MapView(items)["profile:ada"])

	// Consistent cross-shard scan: per-shard confirmed reads, rescanned
	// until no shard advanced between passes, then merged.
	state, err := st.Scan()
	check(err)
	fmt.Printf("scan: %d signups, %d active, %d profiles\n",
		bgla.CounterView(state), len(bgla.SetView(state)), len(bgla.MapView(state)))

	stats := st.Stats()
	for s, ps := range stats.PerShard {
		fmt.Printf("  shard %d: %d ops in %d flights\n", s, ps.Ops, ps.Flights)
	}
	fmt.Printf("  scans: %d (%d shard-read passes)\n", stats.Scans, stats.ScanPasses)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
