// Quickstart: one-shot Byzantine Lattice Agreement on the Figure 1
// lattice (the power set of {1,2,3,4} under union). Four processes each
// propose a singleton; one is silent (crash-like Byzantine); the three
// correct ones decide values that lie on a single chain.
//
// From here, the live long-running entry points are bgla.Service and
// bgla.Store (see examples/batching and examples/sharding). For
// deployments that run long enough for history to matter, set
// ServiceConfig.CheckpointEvery (and/or CheckpointBytes): the cluster
// then folds its decided prefix into signed checkpoints, keeping
// per-round latency and resident memory flat as history grows and
// letting restarted replicas catch up by state transfer — see
// DESIGN.md §6.
//
// On the wire (cmd/bglarsm, internal/tcpnet), peers negotiate the
// zero-allocation binary frame codec at connection time and fall back
// to plain JSON envelopes per connection when either side predates it
// or forces interop mode (tcpnet.Config.PlainCodec, bglarsm
// -plaincodec) — see DESIGN.md §10 for the frame layout and the
// negotiation rules.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"bgla"
)

func main() {
	report, err := bgla.Solve(bgla.Config{
		N: 4, F: 1,
		Algorithm: bgla.WTS,
		Proposals: map[int][]string{
			0: {"1"},
			1: {"2"},
			2: {"3"},
		},
		Mute: []int{3}, // p3 plays a silent Byzantine process
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Byzantine Lattice Agreement over the Figure 1 lattice")
	fmt.Println("processes propose {1}, {2}, {3}; p3 is Byzantine-silent")
	fmt.Println()

	ids := make([]int, 0, len(report.Decisions))
	for id := range report.Decisions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		var elems []string
		for _, it := range report.Decisions[id] {
			elems = append(elems, it.Body)
		}
		sort.Strings(elems)
		fmt.Printf("  p%d decided {%s}\n", id, strings.Join(elems, ","))
	}
	fmt.Println()
	fmt.Printf("decided within %d message delays (bound: 2f+5 = 7)\n", report.MaxDelays)
	fmt.Printf("network cost: %d messages (%d max per process)\n", report.Messages, report.PerProcessMax)
	if len(report.Violations) == 0 {
		fmt.Println("specification holds: decisions form a chain, every proposal is included")
	} else {
		log.Fatalf("violations: %v", report.Violations)
	}
}
