// Byzantine: an attack gallery. Each scenario arms one adversary from
// the paper's threat analysis against a WTS cluster and shows the
// defense holding — then runs the Theorem 1 lower-bound attack where no
// defense can exist (n ≤ 3f) and shows agreement actually breaking.
package main

import (
	"fmt"
	"log"

	"bgla/internal/byz"
	"bgla/internal/check"
	"bgla/internal/core/wts"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/proto"
	"bgla/internal/sim"
)

func main() {
	scenarios := []struct {
		name    string
		defense string
		mk      func() proto.Machine
	}{
		{"silent process", "quorums of n-f never wait for it", func() proto.Machine {
			return &byz.Mute{Self: 3}
		}},
		{"junk flooder", "typed decoding + buffer caps drop garbage", func() proto.Machine {
			return &byz.JunkFlooder{Self: 3}
		}},
		{"disclosure equivocator", "reliable broadcast delivers at most one value per process", func() proto.Machine {
			return &byz.Equivocator{
				Self: 3, Tag: wts.DiscTag,
				SideA: []ident.ProcessID{0}, SideB: []ident.ProcessID{1, 2},
				ValA: lattice.FromStrings(3, "A"), ValB: lattice.FromStrings(3, "B"),
			}
		}},
		{"nack spammer", "refinements bounded by f (Lemma 3)", func() proto.Machine {
			return &byz.NackSpammer{Self: 3}
		}},
		{"ack-everything", "decisions carry only quorum-committed safe sets", func() proto.Machine {
			return &byz.AckAll{Self: 3}
		}},
	}

	for _, sc := range scenarios {
		fmt.Printf("attack: %-24s defense: %s\n", sc.name, sc.defense)
		runScenario(sc.name, sc.mk())
	}

	fmt.Println()
	fmt.Println("and the impossible regime (Theorem 1): n=4 facing 2 colluding adversaries (4 <= 3*2)")
	out := byz.RunTheoremOne(4, 2, 500, 1)
	fmt.Printf("  partition + equivocation: %s\n", out)
	for _, v := range out.Violations {
		fmt.Printf("    %s\n", v)
	}
	fmt.Println("  with n = 3f+1 the same attack fails:")
	ok := byz.RunTheoremOne(7, 2, 40, 1)
	fmt.Printf("  n=7 vs 2 adversaries: %s\n", ok)
}

func runScenario(name string, adversary proto.Machine) {
	n, f := 4, 1
	var machines []proto.Machine
	var correct []*wts.Machine
	for i := 0; i < n-1; i++ {
		id := ident.ProcessID(i)
		m, err := wts.New(wts.Config{Self: id, N: n, F: f, Proposal: lattice.FromStrings(id, "v")})
		if err != nil {
			log.Fatal(err)
		}
		correct = append(correct, m)
		machines = append(machines, m)
	}
	machines = append(machines, adversary)
	sim.New(sim.Config{Machines: machines, MaxTime: 10_000, MaxDeliveries: 2_000_000}).Run()

	run := &check.LARun{
		Proposals: map[ident.ProcessID]lattice.Set{},
		Decisions: map[ident.ProcessID]lattice.Set{},
		F:         f,
		ByzValues: []lattice.Set{lattice.FromStrings(3, "A"), lattice.FromStrings(3, "B")},
	}
	for _, m := range correct {
		run.Proposals[m.ID()] = lattice.FromStrings(m.ID(), "v")
		if d, ok := m.Decision(); ok {
			run.Decisions[m.ID()] = d
		}
	}
	// The equivocator's two values exceed f=1 if both appeared; the
	// checker flags that, so keep only values actually decided.
	seen := lattice.Empty()
	for _, d := range run.Decisions {
		seen = seen.Union(d)
	}
	var byzVals []lattice.Set
	for _, v := range run.ByzValues {
		if v.SubsetOf(seen) {
			byzVals = append(byzVals, v)
		}
	}
	run.ByzValues = byzVals
	if v := run.All(); len(v) != 0 {
		log.Fatalf("  UNEXPECTED violations under %s: %v", name, v)
	}
	fmt.Printf("  -> all %d correct processes decided; specification intact\n", len(correct))
}
