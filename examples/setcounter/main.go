// Setcounter: the paper's motivating application (§1) — a dependable
// counter with commutative add operations and consistent reads, built
// as a Byzantine-tolerant replicated state machine over Generalized
// Lattice Agreement. One of the four replicas is silent-Byzantine the
// whole time; updates and reads still complete, and every read is a
// consistent snapshot on the lattice chain.
package main

import (
	"fmt"
	"log"

	"bgla"
)

func main() {
	svc, err := bgla.NewService(bgla.ServiceConfig{
		Replicas:     4,
		Faulty:       1,
		MuteReplicas: []int{3}, // replica 3 is Byzantine (silent)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	fmt.Println("dependable counter on 4 replicas, replica 3 Byzantine-silent")
	fmt.Println()

	reads := []int64{}
	for i := 1; i <= 5; i++ {
		if err := svc.Update(bgla.IncCmd(uint64(i))); err != nil {
			log.Fatalf("add(%d): %v", i, err)
		}
		state, err := svc.Read()
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		value := bgla.CounterView(state)
		reads = append(reads, value)
		fmt.Printf("  add(%d) -> read() = %d\n", i, value)
	}

	// Reads grow monotonically: consistent snapshots along one chain
	// (if someone reads 3, a later read can be 6 but never 2).
	for i := 1; i < len(reads); i++ {
		if reads[i] < reads[i-1] {
			log.Fatalf("read monotonicity violated: %v", reads)
		}
	}
	fmt.Println()
	fmt.Println("reads are growing snapshots of the same chain: linearizable without consensus")
}
