// Batching: many goroutines hammer one Byzantine-tolerant RSM (with a
// silent Byzantine replica in the cluster) through the concurrent
// Service API. Generalized Lattice Agreement decides joins of
// concurrently proposed commands, so the batching pipeline coalesces
// concurrent updates into shared lattice proposals: the pipeline stats
// printed at the end show many operations riding far fewer agreement
// rounds.
//
// A note on the delta wire codec (DESIGN.md §4): clients see no API
// change from it. Update/Read semantics, blocking behaviour and the
// values returned are identical — the codec only changes how replica
// notifications and acks are framed between TCP nodes (content-digest
// base references plus delta items instead of full history-sized
// sets), with an automatic full-set fallback when a receiver lacks the
// referenced base. This in-process example never serializes at all;
// over TCP (cmd/bglarsm) the same client code simply ships far fewer
// bytes per operation as the decided history grows.
package main

import (
	"fmt"
	"log"
	"sync"

	"bgla"
)

func main() {
	svc, err := bgla.NewService(bgla.ServiceConfig{
		Replicas:     4,
		Faulty:       1,
		MuteReplicas: []int{3}, // one silent Byzantine replica
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	const (
		workers      = 16
		opsPerWorker = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < opsPerWorker; k++ {
				if err := svc.Update(bgla.IncCmd(1)); err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()

	state, err := svc.Read()
	if err != nil {
		log.Fatal(err)
	}
	st := svc.BatchStats()
	fmt.Printf("%d workers x %d updates against 4 replicas (1 Byzantine-silent)\n",
		workers, opsPerWorker)
	fmt.Printf("replicated counter: %d\n", bgla.CounterView(state))
	fmt.Printf("pipeline: %d ops over %d lattice proposals (avg batch %.2f, max %d)\n",
		st.Ops, st.Flights, st.AvgBatch, st.MaxBatchOps)
	fmt.Println("batching is semantically free: GLA decides joins of concurrent proposals")
}
