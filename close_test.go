package bgla

import (
	"sync"
	"testing"
	"time"
)

// TestServiceCloseIdempotent: Close must be callable any number of
// times, from any number of goroutines — Store.Close fans out over
// components whose owners may also Close them via defer.
func TestServiceCloseIdempotent(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // double Close: must be a no-op, not a re-stop
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Close()
		}()
	}
	wg.Wait()
}

// TestServiceCloseDuringInFlightOps: concurrent Updates/Reads racing a
// concurrent Close must each either complete or fail cleanly, and a
// racing second Close must not panic or deadlock.
func TestServiceCloseDuringInFlightOps(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Replicas: 4, Faulty: 1,
		Jitter: 200 * time.Microsecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				if w%2 == 0 {
					_ = svc.Update(IncCmd(1))
				} else {
					_, _ = svc.Read()
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Close()
		}()
	}
	wg.Wait()
	svc.Close()
}
