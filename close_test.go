package bgla

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestServiceCloseIdempotent: Close must be callable any number of
// times, from any number of goroutines — Store.Close fans out over
// components whose owners may also Close them via defer.
func TestServiceCloseIdempotent(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // double Close: must be a no-op, not a re-stop
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Close()
		}()
	}
	wg.Wait()
}

// TestServiceCloseDuringInFlightOps: concurrent Updates/Reads racing a
// concurrent Close must each either complete or fail cleanly, and a
// racing second Close must not panic or deadlock.
func TestServiceCloseDuringInFlightOps(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Replicas: 4, Faulty: 1,
		Jitter: 200 * time.Microsecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				if w%2 == 0 {
					_ = svc.Update(IncCmd(1))
				} else {
					_, _ = svc.Read()
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Close()
		}()
	}
	wg.Wait()
	svc.Close()
}

// TestServiceCloseDuringCancelledCtxOps: Close racing operations whose
// contexts are being cancelled at the same moment — the three-way race
// between pipeline shutdown, ctx expiry and completion delivery.
func TestServiceCloseDuringCancelledCtxOps(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Replicas: 4, Faulty: 1,
		Jitter: 200 * time.Microsecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				if w%2 == 0 {
					_ = svc.UpdateCtx(ctx, IncCmd(1))
				} else {
					_, _ = svc.ReadCtx(ctx)
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	wg.Add(2)
	go func() {
		defer wg.Done()
		cancel()
	}()
	go func() {
		defer wg.Done()
		svc.Close()
	}()
	wg.Wait()
	svc.Close()
}

// TestStoreCloseDuringInFlightScans: Store.Close racing concurrent
// Updates, point Reads and cross-shard Scans — the scan fan-out holds
// per-shard pipeline reads in flight while Close tears the pipelines,
// demux workers and transport down, in that order. Every blocked
// caller must return (value or error), nothing may panic or deadlock,
// and a racing second Close must be a no-op. Run under -race.
func TestStoreCloseDuringInFlightScans(t *testing.T) {
	st, err := NewStore(ShardedConfig{
		Shards: 4,
		ServiceConfig: ServiceConfig{
			Replicas: 4, Faulty: 1,
			Jitter: 200 * time.Microsecond, Seed: 23,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 9; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				switch w % 3 {
				case 0:
					_ = st.Update(IncCmd(1))
				case 1:
					_, _ = st.Read("key-close")
				default:
					_, _ = st.Scan()
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.Close()
		}()
	}
	wg.Wait()
	st.Close()
}
