package bgla

// Full-stack autoscaler scenario (ISSUE 10 satellite): the real
// internal/autoscale controller polling a live 2-shard Store's registry
// series while the store runs on the deterministic faultnet harness
// with one mute Byzantine replica per shard and two scripted partition
// windows cutting a *correct* replica. During each window the affected
// shards cannot reach their write quorum (one correct replica mute, one
// partitioned), so sequential updates stall in virtual time until the
// heal — exactly the latency signal the controller's windowed p99
// watches. The controller is evaluated only at quiesced points, so its
// inputs (and therefore its decisions and trace) are deterministic:
// the whole run must replay byte-identically, decisions must stay
// within [Min, Max], and consecutive decisions must never be closer
// than the cooldown.
//
// The controller only *decides* here — executing a resize mid-run is
// the bench harness's drain-and-restart job (internal/exp, E20);
// Applied() feeds the decision back so the law keeps operating on the
// ordered shard count.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bgla/internal/autoscale"
	"bgla/internal/faultnet"
	"bgla/internal/obs"
	"bgla/internal/proto"
)

// autoscaleScenarioRun is everything one run produces that must be
// reproducible: the decision list, the autoscale trace bytes, and the
// network delivery trace.
type autoscaleScenarioRun struct {
	decisions []autoscale.Decision
	atrace    []byte
	net       *faultnet.Trace
}

const (
	asWin1From uint64 = 300
	asWin1Heal uint64 = 2500
	asWin2From uint64 = 2600
	asWin2Heal uint64 = 6000
	asCooldown uint64 = 200
)

func runAutoscaleScenario(t *testing.T, seed int64) autoscaleScenarioRun {
	t.Helper()
	reg := obs.NewRegistry()
	atr := &obs.Tracer{}
	ftr := &faultnet.Trace{}
	var net *faultnet.Net
	clock := obs.ClockFunc(func() uint64 { return net.Now() })
	st, err := NewStore(ShardedConfig{
		Shards: 2,
		// One mute Byzantine replica per shard — different processes, so
		// each process is still correct for the other shard.
		ShardMutes: [][]int{{3}, {2}},
		ServiceConfig: ServiceConfig{
			Replicas: 4, Faulty: 1, Seed: seed,
			Obs: ObsConfig{Registry: reg, Clock: clock},
			Hooks: &ServiceHooks{
				InlineShards: true,
				NewTransport: func(machines []proto.Machine, opts TransportOptions) Transport {
					net = faultnet.New(machines, faultnet.Options{
						Seed: seed, MaxDelay: 3, Trace: ftr,
						// Two windows cutting correct replica 1: with the
						// shard mute that leaves 2 of the 3 needed correct
						// replicas, so updates stall until the heal.
						Schedule: &faultnet.Schedule{Ops: []faultnet.Op{
							faultnet.NewPartition(asWin1From, asWin1Heal, 1),
							faultnet.NewPartition(asWin2From, asWin2Heal, 1),
						}},
					})
					return net
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctl := autoscale.New(autoscale.Config{
		Registry: reg, Clock: clock, Trace: atr,
		Min: 1, Max: 4, Initial: 2,
		UpP99:      1_000, // virtual ticks; healthy ops decide in tens
		DownP99:    500,
		Hysteresis: 2,
		Cooldown:   asCooldown,
	})
	var decisions []autoscale.Decision
	tick := func() {
		if d, ok := ctl.Tick(); ok {
			decisions = append(decisions, d)
			ctl.Applied(d.To)
		}
	}

	stamp := uint64(0)
	update := func() {
		stamp++
		if err := st.Update(PutCmd(fmt.Sprintf("as-%02d", stamp%8), stamp, "v")); err != nil {
			t.Fatalf("seed %d: update %d: %v", seed, stamp, err)
		}
		net.Quiesce()
	}

	// Baseline the controller at launch, then pad with healthy traffic
	// up to the first partition window.
	net.Quiesce()
	tick()
	for net.Now() < asWin1From {
		update()
	}
	// First stalled update: its messages to replica 1 are held until
	// the heal, so it decides ~asWin1Heal ticks after launch. One
	// breach window -> streak 1, no decision yet (hysteresis 2).
	update()
	tick()
	// Pad across the gap; the update whose messages land in window 2
	// stalls until its heal. Second breach window -> scale-up fires.
	for net.Now() < asWin2Heal {
		update()
	}
	tick()
	// Recovery: healthy traffic only. The idle windows build the down
	// streak, the cooldown spaces the decisions out.
	for i := 0; i < 12; i++ {
		update()
		tick()
	}

	return autoscaleScenarioRun{decisions: decisions, atrace: bytes.Clone(atr.Bytes()), net: ftr}
}

// TestAutoscaleFaultnetScenario runs the scenario twice: sane decisions
// (bounds, cooldown spacing, up under partitions then down after
// recovery) and byte-identical replay.
func TestAutoscaleFaultnetScenario(t *testing.T) {
	seed := int64(11)
	if *seedFlag != 0 {
		seed = *seedFlag
	}
	a := runAutoscaleScenario(t, seed)

	if len(a.decisions) == 0 {
		t.Fatalf("seed %d: no autoscale decisions; replay: go test -run TestAutoscaleFaultnetScenario -seed=%d", seed, seed)
	}
	var ups, downs int
	for _, d := range a.decisions {
		if d.To < 1 || d.To > 4 {
			t.Fatalf("seed %d: decision out of bounds: %+v", seed, d)
		}
		switch d.Dir {
		case autoscale.Up:
			ups++
			if d.P99 < 1_000 {
				t.Fatalf("seed %d: up decision without a breaching p99: %+v", seed, d)
			}
		case autoscale.Down:
			downs++
		default:
			t.Fatalf("seed %d: unknown direction: %+v", seed, d)
		}
	}
	if ups == 0 {
		t.Fatalf("seed %d: partitions never drove a scale-up: %+v", seed, a.decisions)
	}
	if downs == 0 {
		t.Fatalf("seed %d: recovery never drove a scale-down: %+v", seed, a.decisions)
	}
	// Never flap past the cooldown: consecutive decisions are spaced by
	// at least the configured minimum in virtual time.
	for i := 1; i < len(a.decisions); i++ {
		if gap := a.decisions[i].At - a.decisions[i-1].At; gap < asCooldown {
			t.Fatalf("seed %d: decisions %d ticks apart, cooldown %d:\n%+v", seed, gap, asCooldown, a.decisions)
		}
	}
	// The first decision must be the partition-driven up, and it must
	// come from the store's real shard count.
	if first := a.decisions[0]; first.Dir != autoscale.Up || first.From != 2 || first.To != 4 {
		t.Fatalf("seed %d: first decision not the 2->4 scale-up: %+v", seed, first)
	}

	// Byte-identical replay, mirroring TestConsensusTraceByteStable:
	// same seed reproduces the decision list, the autoscale trace, and
	// the full network delivery trace.
	b := runAutoscaleScenario(t, seed)
	if !reflect.DeepEqual(a.decisions, b.decisions) {
		t.Fatalf("seed %d: decisions diverged across replays:\n%+v\nvs\n%+v", seed, a.decisions, b.decisions)
	}
	if !bytes.Equal(a.atrace, b.atrace) {
		t.Fatalf("seed %d: autoscale trace diverged:\n%s\nvs\n%s", seed, a.atrace, b.atrace)
	}
	if d := faultnet.Diff(a.net, b.net); d != "" {
		t.Fatalf("seed %d: delivery trace diverged: %s", seed, d)
	}
	if a.net.Lines() == 0 {
		t.Fatal("empty delivery trace")
	}
	t.Logf("seed %d: %d decisions (%d up, %d down), %d deliveries, trace %s",
		seed, len(a.decisions), ups, downs, a.net.Lines(), a.net.Fingerprint())
}
