package bgla

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bgla/internal/batch"
	"bgla/internal/compact"
	"bgla/internal/core"
	"bgla/internal/core/gwts"
	"bgla/internal/ident"
	"bgla/internal/msg"
	"bgla/internal/obs"
	"bgla/internal/proto"
	"bgla/internal/rsm"
	"bgla/internal/sig"
	"bgla/internal/wal"
)

// ObsConfig wires a cluster into the unified observability layer
// (internal/obs, DESIGN.md §9). The zero value is fully functional:
// every instrument lands in a private registry (so the Stats snapshot
// API always works) and no trace is recorded.
type ObsConfig struct {
	// Registry receives every metric family the stack registers:
	// pipeline counters and gauges, the decision-latency histogram, and
	// pull-mode views over the compaction and storage aggregates. Nil
	// gets a private registry, reachable through Service.Metrics.
	Registry *obs.Registry
	// Clock timestamps trace events and decision-latency samples (nil =
	// obs.WallClock). The deterministic harness substitutes faultnet
	// virtual time, which makes the consensus trace byte-stable across
	// same-seed runs.
	Clock obs.Clock
	// ConsensusTrace, when non-nil, receives the replica-side protocol
	// events (propose/ack/tally/decide/ckpt_install/state_transfer/
	// wal_sync). All fields are deterministic functions of machine state,
	// so under faultnet with the virtual clock the trace is byte-stable.
	ConsensusTrace *obs.Tracer
	// ClientTrace, when non-nil, receives the batching pipeline's
	// client-side events (flight launch/decide). Launches race residual
	// network deliveries, so this trace is NOT byte-stable even under
	// faultnet — keep it out of determinism assertions.
	ClientTrace *obs.Tracer
}

// normalize resolves the nil defaults once, so every component built
// from the config shares one registry and clock.
func (o *ObsConfig) normalize() {
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Clock == nil {
		o.Clock = obs.WallClock
	}
}

// ServiceConfig configures a live in-process Byzantine-tolerant RSM.
type ServiceConfig struct {
	// Replicas is n; Faulty is the tolerated bound f (n >= 3f+1).
	Replicas int
	Faulty   int
	// MuteReplicas lists replica indices to run as silent Byzantine
	// replicas (fault injection; at most Faulty of them).
	MuteReplicas []int
	// Jitter randomizes delivery delays (0 = immediate).
	Jitter time.Duration
	// Seed drives the jitter RNG.
	Seed int64
	// OpTimeout bounds each Update/Read call (default 30s).
	OpTimeout time.Duration

	// Batching pipeline knobs (zero = defaults; see internal/batch).
	//
	// MaxBatch bounds operations coalesced into one lattice proposal
	// (default 64; 1 with MaxInFlight 1 restores the seed's strictly
	// one-at-a-time client).
	MaxBatch int
	// MaxBatchDelay bounds how long a forming batch lingers for more
	// operations once every flight slot is busy (default 200µs).
	MaxBatchDelay time.Duration
	// MinBatch is the group-commit floor: a forming batch waits (up to
	// MaxBatchDelay) for at least this many operations even while
	// flight slots are free (default 1 — no waiting when idle; see
	// internal/batch).
	MinBatch int
	// MaxInFlight bounds pipelined proposals (default 8).
	MaxInFlight int
	// QueueDepth bounds queued operations; beyond it callers block —
	// backpressure (default 4096).
	QueueDepth int

	// CheckpointEvery enables checkpointed history compaction
	// (internal/compact, DESIGN.md §6): once a replica's decided window
	// beyond the current certified base reaches this many commands, the
	// cluster folds the decided prefix into a 2f+1-signed checkpoint
	// certificate and every replica rewrites its live state as
	// "certified base + O(window) frontier". Per-round protocol cost
	// and resident state then stay flat as history grows, and a lagging
	// or restarted replica catches up from a peer's checkpoint via
	// state transfer instead of replaying history. 0 disables (the
	// seed's unbounded-history behaviour).
	CheckpointEvery int
	// CheckpointBytes adds a byte-denominated trigger: checkpoint once
	// the window's command bodies exceed this many bytes (0 disables
	// the byte trigger; either threshold firing initiates a
	// checkpoint).
	CheckpointBytes int

	// DataDir enables the durable storage engine (internal/wal,
	// DESIGN.md §8): each replica appends its decided rounds and
	// installed checkpoint certificates to a write-ahead log under
	// DataDir/shard-<s>/replica-<i>, and on construction rehydrates
	// from whatever the directory holds before touching the network —
	// a restarted replica (or a fully restarted cluster) resumes from
	// local disk, replaying only O(window) records beyond the newest
	// persisted checkpoint and asking peers only for what the disk
	// lost. Empty disables durability (the seed's in-memory behaviour).
	DataDir string
	// SyncMode selects the WAL fsync policy: "record" (fsync per
	// decided record), "group" or "" (group commit — the default) or
	// "off" (the OS page cache decides). See wal.SyncPolicy.
	SyncMode string
	// GroupSync is the group-commit interval in records (0 = 32).
	GroupSync int
	// SegmentBytes rotates WAL segments at this size (0 = 1 MiB).
	SegmentBytes int

	// Obs wires the cluster's instruments and traces into a shared
	// observability surface (zero value = private registry, wall clock,
	// no tracing).
	Obs ObsConfig

	// Hooks are test-only fault-injection points: a replacement
	// transport (the deterministic harness of internal/faultnet),
	// per-slot replica wrappers (active Byzantine adversaries,
	// crash-restart wrappers) and a substitute storage stack (wal.MemFS
	// plus torn-write/partial-fsync hooks). Nil in production.
	Hooks *ServiceHooks
}

// clientID is the identity the Service uses on the network.
const clientID ident.ProcessID = 1_000_000

// defaultOpTimeout bounds each operation when the config leaves
// OpTimeout zero.
const defaultOpTimeout = 30 * time.Second

// gateway is the Service's in-network presence: it forwards replica
// notifications to the batching pipeline, which content-matches them
// against every in-flight batch (no stale-drop window: a live reply is
// never discarded just because a previous operation's leftovers arrive
// with it).
type gateway struct {
	proto.Recorder
	deliver func(from ident.ProcessID, m msg.Msg)
}

func (g *gateway) ID() ident.ProcessID   { return clientID }
func (g *gateway) Start() []proto.Output { return nil }
func (g *gateway) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	g.deliver(from, m)
	return nil
}

// transportSender adapts the transport to the pipeline.
type transportSender struct{ net Transport }

func (s transportSender) Send(to ident.ProcessID, m msg.Msg) {
	s.net.Inject(clientID, to, m)
}

// Service is a live Byzantine-tolerant replicated state machine for
// commutative updates (§7): a cluster of GWTS replicas on a concurrent
// in-process network fronted by a batching, pipelining client gateway
// (internal/batch). All methods are safe for concurrent use from many
// goroutines; concurrent operations are coalesced into joint lattice
// proposals (GLA decides joins, so batching is semantically free) and
// several proposals are kept in flight, while each individual call
// retains the blocking Algorithm 5/6 semantics of the paper's client.
type Service struct {
	cfg  ServiceConfig
	net  Transport
	gw   *gateway
	pipe *batch.Pipeline
	reps []*gwts.Machine
	pers []*wal.Persister
	seq  atomic.Int64

	closeOnce sync.Once
	closed    atomic.Bool
	frozen    frozenStats
}

// frozenStats is the terminal snapshot Close captures after teardown,
// so the Stats surfaces stay stable (and race-free) once the cluster
// is gone.
type frozenStats struct {
	batch      BatchStats
	compaction CompactionStats
	storage    StorageStats
	latency    obs.HistSnapshot
}

// replicaCompaction builds the per-replica checkpoint configuration
// (zero when disabled). The keychain is the fast deterministic
// simulation scheme — the in-process transport already authenticates
// senders, and DESIGN.md §3 explains why protocol-visible behaviour is
// identical to Ed25519.
func replicaCompaction(cfg ServiceConfig, kc sig.Keychain, id ident.ProcessID) compact.Config {
	if cfg.CheckpointEvery <= 0 && cfg.CheckpointBytes <= 0 {
		return compact.Config{}
	}
	return compact.Config{
		Self: id, N: cfg.Replicas, F: cfg.Faulty,
		Keychain: kc, Signer: kc.SignerFor(id),
		Every: cfg.CheckpointEvery, Bytes: cfg.CheckpointBytes,
	}
}

// openReplicaLog opens (and recovers) one replica's durable log,
// rehydrates the freshly built machine from it, and returns the
// persisting wrapper to place on the network.
func openReplicaLog(cfg ServiceConfig, shard, replica int, r *gwts.Machine) (*wal.Persister, error) {
	opt, err := cfg.walOptions(shard, replica)
	if err != nil {
		return nil, err
	}
	p, err := wal.OpenFor(cfg.storageFS(), wal.ReplicaDir(cfg.DataDir, shard, replica), opt, r)
	if err != nil {
		return nil, fmt.Errorf("bgla: open wal shard %d replica %d: %w", shard, replica, err)
	}
	return p, nil
}

// NewService builds and starts the cluster.
func NewService(cfg ServiceConfig) (*Service, error) {
	if err := core.ValidateConfig(cfg.Replicas, cfg.Faulty); err != nil {
		return nil, err
	}
	if len(cfg.MuteReplicas) > cfg.Faulty {
		return nil, fmt.Errorf("bgla: %d mute replicas exceed f=%d", len(cfg.MuteReplicas), cfg.Faulty)
	}
	for _, i := range cfg.MuteReplicas {
		if i < 0 || i >= cfg.Replicas {
			return nil, fmt.Errorf("bgla: mute replica %d out of range", i)
		}
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = defaultOpTimeout
	}
	cfg.Obs.normalize()
	mute := ident.NewSet()
	for _, i := range cfg.MuteReplicas {
		mute.Add(ident.ProcessID(i))
	}
	gw := &gateway{}
	machines := []proto.Machine{gw}
	var kc sig.Keychain
	if cfg.CheckpointEvery > 0 || cfg.CheckpointBytes > 0 {
		kc = sig.NewSim(cfg.Replicas, cfg.Seed+0x5eed)
	}
	var reps []*gwts.Machine
	var pers []*wal.Persister
	for i := 0; i < cfg.Replicas; i++ {
		id := ident.ProcessID(i)
		if mute.Has(id) {
			machines = append(machines, cfg.wrapReplica(0, i, &muteMachine{id: id}))
			continue
		}
		rc := rsm.ReplicaConfig{
			Self: id, N: cfg.Replicas, F: cfg.Faulty,
			Clients: []ident.ProcessID{clientID},
			Trace:   cfg.Obs.ConsensusTrace, Clock: cfg.Obs.Clock,
		}
		if kc != nil {
			rc.Compaction = replicaCompaction(cfg, kc, id)
		}
		r, err := rsm.NewReplica(rc)
		if err != nil {
			return nil, err
		}
		m := proto.Machine(r)
		if cfg.DataDir != "" {
			p, err := openReplicaLog(cfg, 0, i, r)
			if err != nil {
				return nil, err
			}
			pers = append(pers, p)
			m = p
		}
		w := cfg.wrapReplica(0, i, m)
		if w == m {
			// Replaced slots (adversaries) drop out of stats
			// aggregation; wrapped slots keep their machine via the
			// hook's own reference.
			reps = append(reps, r)
		}
		machines = append(machines, w)
	}
	net := cfg.newTransport(machines)

	// A restarted client must resume its sequence past everything its
	// previous incarnation got decided: the lattice is a set, so a
	// reused (client, seq) command or read marker is absorbed by the
	// recovered state without a fresh decision and never confirms.
	startSeq := recoveredSeq(pers)

	// Trigger new_value at f+1 correct replicas: mute ones would relay
	// nothing, so target the first f+1 non-mute (correct replicas relay
	// through agreement and all eventually decide either way).
	var submitTo []ident.ProcessID
	for i := 0; i < cfg.Replicas && len(submitTo) < core.ReadQuorum(cfg.Faulty); i++ {
		if id := ident.ProcessID(i); !mute.Has(id) {
			submitTo = append(submitTo, id)
		}
	}
	pipe, err := batch.New(batch.Config{
		Client:      clientID,
		Replicas:    ident.Range(cfg.Replicas),
		SubmitTo:    submitTo,
		F:           cfg.Faulty,
		MaxBatch:    cfg.MaxBatch,
		MaxDelay:    cfg.MaxBatchDelay,
		MinBatch:    cfg.MinBatch,
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		OpTimeout:   cfg.OpTimeout,
		StartSeq:    uint64(startSeq),
		Registry:    cfg.Obs.Registry,
		Clock:       cfg.Obs.Clock,
		Trace:       cfg.Obs.ClientTrace,
	}, transportSender{net: net})
	if err != nil {
		return nil, err
	}
	registerClusterViews(cfg.Obs.Registry, reps, pers)
	gw.deliver = pipe.Deliver
	net.Start()
	s := &Service{cfg: cfg, net: net, gw: gw, pipe: pipe, reps: reps, pers: pers}
	s.seq.Store(int64(startSeq))
	return s, nil
}

// recoveredSeq is the highest client sequence number found in any
// replica's recovered state (0 on a fresh data directory or when
// storage is disabled).
func recoveredSeq(pers []*wal.Persister) int {
	max := 0
	for _, p := range pers {
		if rec := p.Recovered(); rec != nil {
			if v := rsm.MaxSeq(clientID, rec.Decided()); v > max {
				max = v
			}
		}
	}
	return max
}

// Close shuts the cluster down; blocked callers return an error.
// Idempotent and safe for concurrent use — aggregates like Store fan
// Close out over many components without coordinating callers, and a
// second Close (defer + explicit) must not re-stop the network.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.pipe.Close()
		s.net.Stop()
		// The transport has quiesced: flush and close the logs last so
		// every decided record the machines produced is on disk.
		for _, p := range s.pers {
			_ = p.Close()
		}
		// Everything has stopped moving: freeze the stats surfaces so
		// post-close snapshots are stable — a scraper (or a test)
		// reading after Close sees one consistent terminal state, never
		// a machine mid-teardown.
		s.frozen = frozenStats{
			batch:      batchStatsOf(s.pipe),
			compaction: aggregateCompaction(s.reps),
			storage:    aggregateStorage(s.pers),
			latency:    s.pipe.LatencySnapshot(),
		}
		s.closed.Store(true)
	})
}

// Update applies a commutative command to the replicated state and
// returns once the command is durably decided (Algorithm 5). The body
// is made unique automatically (client identity + sequence number).
func (s *Service) Update(body string) error {
	return s.UpdateCtx(context.Background(), body)
}

// UpdateCtx is Update with caller-controlled cancellation: it returns
// early (without waiting out OpTimeout) when ctx is cancelled while the
// operation is queued or in flight.
func (s *Service) UpdateCtx(ctx context.Context, body string) error {
	cmd := rsm.UniqueCmd(clientID, int(s.seq.Add(1)), body)
	return s.pipe.Update(ctx, cmd)
}

// Read returns the current confirmed state of the RSM as command items
// (read markers stripped), per Algorithm 6. Bodies keep the uniqueness
// suffix added by Update; the CRDT views parse through it.
func (s *Service) Read() ([]Item, error) {
	return s.ReadCtx(context.Background())
}

// ReadCtx is Read with caller-controlled cancellation.
func (s *Service) ReadCtx(ctx context.Context) ([]Item, error) {
	v, err := s.pipe.Read(ctx)
	if err != nil {
		return nil, err
	}
	return fromLatticeSet(rsm.StripNops(v)), nil
}

// BatchStats reports pipeline activity: how many operations ran, how
// many lattice proposals (flights) carried them, and the resulting
// amortization (AvgBatch > 1 means agreement rounds were shared).
type BatchStats struct {
	Ops, Updates, Reads uint64
	Flights             uint64
	MaxBatchOps         int
	Timeouts            uint64
	AvgBatch            float64
}

// batchStatsOf converts one pipeline's live counters to the public
// snapshot shape.
func batchStatsOf(p *batch.Pipeline) BatchStats {
	st := p.Stats()
	return BatchStats{
		Ops: st.Ops, Updates: st.Updates, Reads: st.Reads,
		Flights: st.Flights, MaxBatchOps: st.MaxBatchOps,
		Timeouts: st.Timeouts, AvgBatch: st.AvgBatch(),
	}
}

// BatchStats snapshots the batching pipeline's counters. After Close
// it returns the frozen terminal snapshot.
func (s *Service) BatchStats() BatchStats {
	if s.closed.Load() {
		return s.frozen.batch
	}
	return batchStatsOf(s.pipe)
}

// Metrics returns the registry backing the cluster's instruments (the
// configured ObsConfig.Registry, or the private one the zero config
// got). Serve it with obs.Handler for live /metrics and /debug/vars.
func (s *Service) Metrics() *obs.Registry { return s.cfg.Obs.Registry }

// LatencyStats returns the decision-latency histogram (flight launch
// to decide quorum, in Clock units — nanoseconds under the wall
// clock). After Close it returns the frozen terminal snapshot.
func (s *Service) LatencyStats() obs.HistSnapshot {
	if s.closed.Load() {
		return s.frozen.latency
	}
	return s.pipe.LatencySnapshot()
}

// CompactionStats aggregates the replicas' checkpoint activity: how
// many certificates were installed, the deepest certified prefix, and
// the state transfers served to (and completed by) lagging replicas.
// All zero when CheckpointEvery/CheckpointBytes are unset.
type CompactionStats struct {
	// Installs sums checkpoint installations across replicas;
	// CertsBuilt the certificates assembled; SigsIssued the
	// countersignatures produced.
	Installs, CertsBuilt, SigsIssued int64
	// TransfersServed / TransfersReceived count state-transfer replies
	// sent to and catch-ups completed from peers' checkpoints;
	// TransfersRequested the state_req round-trips initiated (a
	// restarted replica with an intact local WAL needs none).
	TransfersServed, TransfersReceived, TransfersRequested int64
	// MaxEpoch is the deepest replica's checkpoint count; MinBaseLen
	// and MaxBaseLen bound the certified prefix sizes across replicas.
	MaxEpoch, MinBaseLen, MaxBaseLen int64
}

func aggregateCompaction(reps []*gwts.Machine) CompactionStats {
	var out CompactionStats
	first := true
	for _, r := range reps {
		st := r.CompactionStats()
		out.Installs += st.Installs
		out.CertsBuilt += st.CertsBuilt
		out.SigsIssued += st.SigsIssued
		out.TransfersServed += st.TransfersServed
		out.TransfersReceived += st.TransfersReceived
		out.TransfersRequested += st.TransfersRequested
		if st.Epoch > out.MaxEpoch {
			out.MaxEpoch = st.Epoch
		}
		if st.BaseLen > out.MaxBaseLen {
			out.MaxBaseLen = st.BaseLen
		}
		if first || st.BaseLen < out.MinBaseLen {
			out.MinBaseLen = st.BaseLen
		}
		first = false
	}
	return out
}

// CompactionStats snapshots the correct replicas' checkpoint counters
// (atomics — safe while the cluster runs). After Close it returns the
// frozen terminal snapshot.
func (s *Service) CompactionStats() CompactionStats {
	if s.closed.Load() {
		return s.frozen.compaction
	}
	return aggregateCompaction(s.reps)
}

// StorageStats aggregates the replicas' durable-log activity (all zero
// when DataDir is unset). See wal.Stats for the per-log fields.
type StorageStats struct {
	// Records / Bytes / Syncs count framed records appended, bytes
	// written and fsyncs issued across replicas; SyncsDropped the syncs
	// a fault hook suppressed.
	Records, Bytes, Syncs, SyncsDropped int64
	// Rotations / Snapshots / Pruned count segment rolls, checkpoint
	// snapshots written, and covered files deleted.
	Rotations, Snapshots, Pruned int64
	// Errors counts wedged logs' write failures.
	Errors int64
	// RecoveredRecords / RecoveredItems describe what the last Open
	// replayed from disk; RecoveredDiscarded the damaged bytes dropped;
	// TornTails how many replicas healed a torn tail.
	RecoveredRecords, RecoveredItems, RecoveredDiscarded int64
	TornTails                                            int64
}

func aggregateStorage(pers []*wal.Persister) StorageStats {
	var out StorageStats
	for _, p := range pers {
		st := p.Log().Stats()
		out.Records += st.Records
		out.Bytes += st.Bytes
		out.Syncs += st.Syncs
		out.SyncsDropped += st.SyncsDropped
		out.Rotations += st.Rotations
		out.Snapshots += st.Snapshots
		out.Pruned += st.Pruned
		out.Errors += st.Errors
		out.RecoveredRecords += st.RecoveredRecords
		out.RecoveredItems += st.RecoveredItems
		out.RecoveredDiscarded += st.RecoveredDiscarded
		if st.TornTail {
			out.TornTails++
		}
	}
	return out
}

// StorageStats snapshots the replicas' WAL counters (atomics — safe
// while the cluster runs). After Close it returns the frozen terminal
// snapshot.
func (s *Service) StorageStats() StorageStats {
	if s.closed.Load() {
		return s.frozen.storage
	}
	return aggregateStorage(s.pers)
}

// registerClusterViews registers pull-mode registry views over the
// compaction and storage aggregates, so /metrics exposes the same
// numbers the CompactionStats/StorageStats snapshots report. Re-used
// registries replace the views (CounterFunc semantics) — the newest
// cluster wins, matching how tests rebuild services over one registry.
func registerClusterViews(reg *obs.Registry, reps []*gwts.Machine, pers []*wal.Persister) {
	comp := func(pick func(CompactionStats) int64) func() uint64 {
		return func() uint64 { return uint64(pick(aggregateCompaction(reps))) }
	}
	reg.CounterFunc("bgla_ckpt_installs_total", comp(func(c CompactionStats) int64 { return c.Installs }))
	reg.CounterFunc("bgla_ckpt_certs_total", comp(func(c CompactionStats) int64 { return c.CertsBuilt }))
	reg.CounterFunc("bgla_ckpt_sigs_total", comp(func(c CompactionStats) int64 { return c.SigsIssued }))
	reg.CounterFunc("bgla_ckpt_transfers_total", comp(func(c CompactionStats) int64 { return c.TransfersServed }), "dir", "served")
	reg.CounterFunc("bgla_ckpt_transfers_total", comp(func(c CompactionStats) int64 { return c.TransfersReceived }), "dir", "received")
	reg.CounterFunc("bgla_ckpt_transfers_total", comp(func(c CompactionStats) int64 { return c.TransfersRequested }), "dir", "requested")
	reg.GaugeFunc("bgla_ckpt_epoch", func() int64 { return aggregateCompaction(reps).MaxEpoch })
	reg.GaugeFunc("bgla_ckpt_base_len", func() int64 { return aggregateCompaction(reps).MaxBaseLen })

	stor := func(pick func(StorageStats) int64) func() uint64 {
		return func() uint64 { return uint64(pick(aggregateStorage(pers))) }
	}
	reg.CounterFunc("bgla_wal_records_total", stor(func(s StorageStats) int64 { return s.Records }))
	reg.CounterFunc("bgla_wal_bytes_total", stor(func(s StorageStats) int64 { return s.Bytes }))
	reg.CounterFunc("bgla_wal_syncs_total", stor(func(s StorageStats) int64 { return s.Syncs }))
	reg.CounterFunc("bgla_wal_syncs_dropped_total", stor(func(s StorageStats) int64 { return s.SyncsDropped }))
	reg.CounterFunc("bgla_wal_rotations_total", stor(func(s StorageStats) int64 { return s.Rotations }))
	reg.CounterFunc("bgla_wal_snapshots_total", stor(func(s StorageStats) int64 { return s.Snapshots }))
	reg.CounterFunc("bgla_wal_errors_total", stor(func(s StorageStats) int64 { return s.Errors }))
}
