package bgla

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bgla/internal/chanet"
	"bgla/internal/core"
	"bgla/internal/ident"
	"bgla/internal/lattice"
	"bgla/internal/msg"
	"bgla/internal/proto"
	"bgla/internal/rsm"
)

// ServiceConfig configures a live in-process Byzantine-tolerant RSM.
type ServiceConfig struct {
	// Replicas is n; Faulty is the tolerated bound f (n >= 3f+1).
	Replicas int
	Faulty   int
	// MuteReplicas lists replica indices to run as silent Byzantine
	// replicas (fault injection; at most Faulty of them).
	MuteReplicas []int
	// Jitter randomizes delivery delays (0 = immediate).
	Jitter time.Duration
	// Seed drives the jitter RNG.
	Seed int64
	// OpTimeout bounds each Update/Read call (default 30s).
	OpTimeout time.Duration
}

// clientID is the identity the Service uses on the network.
const clientID ident.ProcessID = 1_000_000

// gatewayMsg carries replica replies to the blocking client.
type gatewayMsg struct {
	from ident.ProcessID
	m    msg.Msg
}

// gateway is the Service's in-network presence: it forwards replica
// notifications to the blocking client API.
type gateway struct {
	proto.Recorder
	out chan gatewayMsg
}

func (g *gateway) ID() ident.ProcessID   { return clientID }
func (g *gateway) Start() []proto.Output { return nil }
func (g *gateway) Handle(from ident.ProcessID, m msg.Msg) []proto.Output {
	switch m.(type) {
	case msg.Decide, msg.CnfRep:
		select {
		case g.out <- gatewayMsg{from: from, m: m}:
		default: // client not listening: drop (stale notifications)
		}
	}
	return nil
}

// Service is a live Byzantine-tolerant replicated state machine for
// commutative updates (§7): a cluster of GWTS replicas on a concurrent
// in-process network plus a blocking client implementing Algorithms 5
// and 6. All methods are safe for concurrent use; operations serialize
// client-side (one in flight), matching the sequential client of the
// paper.
type Service struct {
	cfg   ServiceConfig
	net   *chanet.Net
	gw    *gateway
	mu    sync.Mutex
	seq   int
	state lattice.Set // last confirmed read state (cached)
}

// NewService builds and starts the cluster.
func NewService(cfg ServiceConfig) (*Service, error) {
	if err := core.ValidateConfig(cfg.Replicas, cfg.Faulty); err != nil {
		return nil, err
	}
	if len(cfg.MuteReplicas) > cfg.Faulty {
		return nil, fmt.Errorf("bgla: %d mute replicas exceed f=%d", len(cfg.MuteReplicas), cfg.Faulty)
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	mute := ident.NewSet()
	for _, i := range cfg.MuteReplicas {
		mute.Add(ident.ProcessID(i))
	}
	gw := &gateway{out: make(chan gatewayMsg, 65536)}
	machines := []proto.Machine{gw}
	for i := 0; i < cfg.Replicas; i++ {
		id := ident.ProcessID(i)
		if mute.Has(id) {
			machines = append(machines, &muteMachine{id: id})
			continue
		}
		r, err := rsm.NewReplica(rsm.ReplicaConfig{
			Self: id, N: cfg.Replicas, F: cfg.Faulty,
			Clients: []ident.ProcessID{clientID},
		})
		if err != nil {
			return nil, err
		}
		machines = append(machines, r)
	}
	net := chanet.New(machines, chanet.Options{MaxJitter: cfg.Jitter, Seed: cfg.Seed})
	net.Start()
	return &Service{cfg: cfg, net: net, gw: gw}, nil
}

// Close shuts the cluster down.
func (s *Service) Close() {
	s.net.Stop()
}

// Update applies a commutative command to the replicated state and
// returns once the command is durably decided (Algorithm 5). The body
// is made unique automatically (client identity + sequence number).
func (s *Service) Update(body string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	cmd := lattice.Item{Author: clientID, Body: fmt.Sprintf("%s\x00%d", body, s.seq)}
	_, err := s.runOp(cmd, false)
	return err
}

// Read returns the current confirmed state of the RSM as command items
// (read markers stripped), per Algorithm 6. Bodies keep the uniqueness
// suffix added by Update; the CRDT views parse through it.
func (s *Service) Read() ([]Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	nop := rsm.NopCmd(clientID, s.seq)
	v, err := s.runOp(nop, true)
	if err != nil {
		return nil, err
	}
	s.state = v
	return fromLatticeSet(rsm.StripNops(v)), nil
}

// runOp executes one Alg 5/6 operation; the caller holds the lock.
func (s *Service) runOp(cmd lattice.Item, confirm bool) (lattice.Set, error) {
	// Drain stale notifications from previous ops.
	for {
		select {
		case <-s.gw.out:
			continue
		default:
		}
		break
	}
	// Trigger new_value at f+1 replicas. Mute replicas may be among
	// them; correct ones relay through agreement either way, and all
	// replicas eventually decide, so target the first f+1 non-mute.
	targets := 0
	mute := ident.NewSet()
	for _, i := range s.cfg.MuteReplicas {
		mute.Add(ident.ProcessID(i))
	}
	for i := 0; i < s.cfg.Replicas && targets < core.ReadQuorum(s.cfg.Faulty); i++ {
		id := ident.ProcessID(i)
		if mute.Has(id) {
			continue
		}
		s.net.Inject(clientID, id, msg.NewValue{Cmd: cmd})
		targets++
	}
	deadline := time.NewTimer(s.cfg.OpTimeout)
	defer deadline.Stop()

	need := core.ReadQuorum(s.cfg.Faulty)
	deciders := ident.NewSet()
	candidates := map[string]lattice.Set{}
	confirmers := map[string]*ident.Set{}
	confirming := false
	for {
		select {
		case gm := <-s.gw.out:
			switch v := gm.m.(type) {
			case msg.Decide:
				if confirming || !v.Value.Contains(cmd) {
					continue
				}
				deciders.Add(gm.from)
				if _, ok := candidates[v.Value.Key()]; !ok {
					candidates[v.Value.Key()] = v.Value
				}
				if deciders.Len() < need {
					continue
				}
				if !confirm {
					return lattice.Empty(), nil // update complete
				}
				confirming = true
				for _, val := range candidates {
					for i := 0; i < s.cfg.Replicas; i++ {
						s.net.Inject(clientID, ident.ProcessID(i), msg.CnfReq{Value: val})
					}
				}
			case msg.CnfRep:
				if !confirming {
					continue
				}
				key := v.Value.Key()
				if _, ok := candidates[key]; !ok {
					continue
				}
				set := confirmers[key]
				if set == nil {
					set = ident.NewSet()
					confirmers[key] = set
				}
				set.Add(gm.from)
				if set.Len() >= need {
					return v.Value, nil
				}
			}
		case <-deadline.C:
			return lattice.Empty(), errors.New("bgla: operation timed out")
		}
	}
}
