package bgla

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bgla/internal/wal"
)

// These tests exercise the production storage path end to end: real
// OS filesystem (t.TempDir), live chanet transport, full Service/Store
// restart cycles. The deterministic power-loss and torn-write
// scenarios live in faultnet_test.go on wal.MemFS.

func TestServiceDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := ServiceConfig{
		Replicas: 4, Faulty: 1,
		DataDir: dir, SyncMode: "record",
		CheckpointEvery: 8,
	}

	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := svc.Update(AddCmd(fmt.Sprintf("gen1-%02d", i))); err != nil {
			svc.Close()
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if st := svc.StorageStats(); st.Records == 0 || st.Syncs == 0 {
		svc.Close()
		t.Fatalf("no WAL activity: %+v", st)
	}
	svc.Close()

	// Every replica has a data directory on disk.
	for i := 0; i < cfg.Replicas; i++ {
		if _, err := os.Stat(wal.ReplicaDir(dir, 0, i)); err != nil {
			t.Fatalf("replica %d data dir missing: %v", i, err)
		}
	}

	// The whole cluster restarts from local disk alone — no surviving
	// peer, no prior network state — and serves every decided command.
	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if st := svc2.StorageStats(); st.RecoveredItems == 0 {
		t.Fatalf("nothing recovered from disk: %+v", st)
	}
	state, err := svc2.Read()
	if err != nil {
		t.Fatal(err)
	}
	set := SetView(state)
	if len(set) != n {
		t.Fatalf("after restart SetView has %d items, want %d: %v", len(set), n, set)
	}

	// The restarted cluster keeps working and stays durable.
	if err := svc2.Update(AddCmd("gen2-00")); err != nil {
		t.Fatal(err)
	}
	state, err = svc2.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(SetView(state)); got != n+1 {
		t.Fatalf("post-restart update: %d items, want %d", got, n+1)
	}
}

func TestServiceDurableDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := ServiceConfig{Replicas: 4, Faulty: 1, DataDir: dir, CheckpointEvery: 6}
	total := 0
	for gen := 0; gen < 3; gen++ {
		svc, err := NewService(cfg)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		for i := 0; i < 7; i++ {
			if err := svc.Update(AddCmd(fmt.Sprintf("g%d-%d", gen, i))); err != nil {
				svc.Close()
				t.Fatalf("gen %d update %d: %v", gen, i, err)
			}
			total++
		}
		state, err := svc.Read()
		if err != nil {
			svc.Close()
			t.Fatalf("gen %d read: %v", gen, err)
		}
		if got := len(SetView(state)); got != total {
			svc.Close()
			t.Fatalf("gen %d sees %d items, want %d", gen, got, total)
		}
		svc.Close()
	}
}

func TestStoreDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardedConfig{
		Shards: 2,
		ServiceConfig: ServiceConfig{
			Replicas: 4, Faulty: 1,
			DataDir: dir, CheckpointEvery: 8,
		},
	}
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if err := st.Update(AddCmd(fmt.Sprintf("key-%02d", i))); err != nil {
			st.Close()
			t.Fatalf("update %d: %v", i, err)
		}
	}
	st.Close()

	// Per-shard per-replica directory layout.
	for s := 0; s < cfg.Shards; s++ {
		for i := 0; i < cfg.Replicas; i++ {
			d := wal.ReplicaDir(dir, s, i)
			if _, err := os.Stat(filepath.FromSlash(d)); err != nil {
				t.Fatalf("shard %d replica %d data dir missing: %v", s, i, err)
			}
		}
	}

	st2, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if ss := st2.StorageStats(); ss.RecoveredItems == 0 {
		t.Fatalf("store recovered nothing: %+v", ss)
	}
	state, err := st2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(SetView(state)); got != n {
		t.Fatalf("after restart Scan has %d items, want %d", got, n)
	}
}

func TestServiceBadSyncMode(t *testing.T) {
	if _, err := NewService(ServiceConfig{
		Replicas: 4, Faulty: 1,
		DataDir: t.TempDir(), SyncMode: "fsync-sometimes",
	}); err == nil {
		t.Fatal("NewService accepted an unknown sync mode")
	}
}
