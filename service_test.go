package bgla

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestServiceCounter(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 3; i++ {
		if err := svc.Update(IncCmd(5)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if err := svc.Update(DecCmd(3)); err != nil {
		t.Fatal(err)
	}
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := CounterView(state); got != 12 {
		t.Fatalf("counter = %d, want 12", got)
	}
}

func TestServiceSetAndMap(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1, Jitter: time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	mustUpdate := func(cmd string) {
		t.Helper()
		if err := svc.Update(cmd); err != nil {
			t.Fatal(err)
		}
	}
	mustUpdate(AddCmd("apple"))
	mustUpdate(AddCmd("pear"))
	mustUpdate(RemCmd("pear"))
	mustUpdate(PutCmd("color", 1, "red"))
	mustUpdate(PutCmd("color", 2, "green"))
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	set := SetView(state)
	if len(set) != 1 || set[0] != "apple" {
		t.Fatalf("SetView = %v", set)
	}
	if m := MapView(state); m["color"] != "green" {
		t.Fatalf("MapView = %v", m)
	}
}

func TestServiceReadMonotonic(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var prev int64 = -1
	for i := 0; i < 4; i++ {
		if err := svc.Update(IncCmd(1)); err != nil {
			t.Fatal(err)
		}
		state, err := svc.Read()
		if err != nil {
			t.Fatal(err)
		}
		got := CounterView(state)
		if got <= prev {
			t.Fatalf("read %d not monotone: %d after %d", i, got, prev)
		}
		// Update Visibility: the i+1-th increment must be visible.
		if got != int64(i+1) {
			t.Fatalf("read %d = %d, want %d", i, got, i+1)
		}
		prev = got
	}
}

func TestServiceToleratesMuteReplica(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1, MuteReplicas: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Update(AddCmd("x")); err != nil {
		t.Fatal(err)
	}
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := SetView(state); len(got) != 1 || got[0] != "x" {
		t.Fatalf("SetView = %v", got)
	}
}

func TestServiceConcurrentCallers(t *testing.T) {
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				if err := svc.Update(AddCmd(fmt.Sprintf("g%d-%d", g, k))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(SetView(state)); got != 8 {
		t.Fatalf("set size = %d, want 8", got)
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(ServiceConfig{Replicas: 3, Faulty: 1}); err == nil {
		t.Fatal("must reject n<3f+1")
	}
	if _, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1, MuteReplicas: []int{1, 2}}); err == nil {
		t.Fatal("must reject too many mutes")
	}
}

func TestServiceUpdateBodiesDeduplicated(t *testing.T) {
	// Two Updates with identical bodies must both count (unique
	// sequence suffixes).
	svc, err := NewService(ServiceConfig{Replicas: 4, Faulty: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Update(IncCmd(1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Update(IncCmd(1)); err != nil {
		t.Fatal(err)
	}
	state, err := svc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := CounterView(state); got != 2 {
		t.Fatalf("counter = %d, want 2 (identical bodies must stay distinct)", got)
	}
}
